#include "eval/trace.hpp"

#include "eval/accuracy.hpp"
#include "io/snapshot.hpp"
#include "obs/timeline.hpp"
#include "obs/tracer.hpp"
#include "qc/simulator.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>

namespace qadd::eval {

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Checkpoint path for gate index `applied` under `options`.
std::string checkpointPath(const TraceOptions& options, std::size_t applied) {
  return options.checkpointPathPrefix + std::to_string(applied) + ".qckp";
}

template <class Simulator>
void finishTrace(SimulationTrace& trace, const Simulator& simulator) {
  trace.finalNodes = simulator.stateNodes();
  trace.peakNodes = simulator.package().peakNodes();
  trace.collapsedToZero = simulator.package().system().isZero(simulator.state().w);
  trace.finalStats = simulator.package().stats();
  for (const auto& event : simulator.gcEvents()) {
    trace.gcEvents.push_back(
        {event.gateIndex, event.report.swept, event.report.liveAfter, event.report.seconds});
  }
}

/// End-of-run timeline sample of one series (Kind::Point): taken right next
/// to the finalStats snapshot, so its gauges match the --stats counters of
/// the run exactly.
template <class Simulator>
void recordTimelinePoint(const SimulationTrace& trace, const Simulator& simulator,
                         double epsilon) {
  if (auto& timeline = obs::Timeline::global(); timeline.enabled()) {
    obs::Timeline::Sample sample;
    sample.kind = obs::Timeline::Kind::Point;
    sample.series = trace.label;
    sample.epsilon = epsilon;
    sample.gateIndex = simulator.gateIndex();
    simulator.package().sampleTimeline(sample);
    timeline.record(std::move(sample));
  }
}

} // namespace

SimulationTrace traceAlgebraic(const qc::Circuit& circuit, const TraceOptions& options,
                               dd::AlgebraicSystem::Config config,
                               ReferenceTrajectory* reference) {
  qc::Simulator<dd::AlgebraicSystem> simulator(circuit, config);
  if (options.kernelPool != nullptr) {
    simulator.setExecutor(options.kernelPool);
  }
  SimulationTrace trace;
  trace.label = simulator.package().system().describe();
  const auto traceSpan = obs::Tracer::global().span("traceAlgebraic", "eval");
  // Per-gate timeline samples recorded by the simulator carry this series'
  // label (ε = 0: exact) while the context is open.
  const obs::Timeline::ScopedSeries timelineSeries(trace.label, 0.0);
  if (reference != nullptr) {
    reference->sampleEvery = options.sampleEvery;
    reference->samples.clear();
  }
  const bool amplitudesFeasible = circuit.qubits() <= options.maxQubitsForAmplitudes;

  double accumulated = 0.0;
  auto start = Clock::now();
  while (simulator.step()) {
    const std::size_t applied = simulator.gateIndex();
    const bool checkpointDue =
        options.checkpointEvery != 0 && applied % options.checkpointEvery == 0;
    const bool sampleDue = applied % options.sampleEvery == 0 || applied == circuit.size();
    if (!checkpointDue && !sampleDue) {
      continue;
    }
    accumulated += secondsSince(start); // pause the clock during sampling/checkpointing
    if (checkpointDue) {
      simulator.saveCheckpointFile(checkpointPath(options, applied));
    }
    if (sampleDue) {
      const auto sampleSpan = obs::Tracer::global().span("sample", "eval");
      TracePoint point;
      point.gateIndex = applied;
      point.nodes = simulator.stateNodes();
      point.seconds = accumulated;
      point.error = 0.0; // exact by construction
      point.maxBits = simulator.package().system().maxBits();
      point.peakNodes = simulator.package().peakNodes();
      point.cacheHitRate = simulator.package().counters().combinedCacheHitRate();
      point.tableFill = simulator.package().system().distinctValues();
      trace.points.push_back(point);
      if (reference != nullptr && amplitudesFeasible) {
        reference->samples.push_back(simulator.package().amplitudes(simulator.state()));
      }
    }
    start = Clock::now();
  }
  accumulated += secondsSince(start);
  trace.totalSeconds = accumulated;
  trace.finalError = 0.0;
  if (options.captureFinalState) {
    trace.finalStateSnapshot = io::saveVector(simulator.package(), simulator.state());
  }
  finishTrace(trace, simulator);
  recordTimelinePoint(trace, simulator, 0.0);
  return trace;
}

namespace {

/// Shared body of traceNumeric/traceNumericExtended/traceRun, generic over
/// the numeric system's float width.
template <class System>
SimulationTrace traceNumericT(const qc::Circuit& circuit, double epsilon,
                              const ReferenceTrajectory* reference, const TraceOptions& options,
                              typename System::Normalization normalization,
                              const char* labelPrefix, const dd::ApproxSpec& approx = {}) {
  qc::Simulator<System> simulator(circuit, {epsilon, normalization});
  simulator.setApproximation(approx);
  if (options.kernelPool != nullptr) {
    // The package decides: exact-mode interning engages the parallel
    // kernels, tolerance mode silently keeps the serial (order-preserving,
    // lossless-cache) path.
    simulator.setExecutor(options.kernelPool);
  }
  SimulationTrace trace;
  {
    std::ostringstream label;
    label << labelPrefix << epsilon;
    if (approx.active()) {
      // No commas (labels are CSV cells); target fidelity reads better than
      // the budget in plots.
      label << " approx=" << dd::approxPolicyName(approx.policy) << ":f" << 1.0 - approx.budget;
    }
    trace.label = label.str();
  }
  const auto traceSpan = obs::Tracer::global().span("traceNumeric", "eval");
  const obs::Timeline::ScopedSeries timelineSeries(trace.label, epsilon);
  const bool amplitudesFeasible = circuit.qubits() <= options.maxQubitsForAmplitudes;
  std::size_t sampleOrdinal = 0;

  double accumulated = 0.0;
  double lastError = std::numeric_limits<double>::quiet_NaN();
  auto start = Clock::now();
  while (simulator.step()) {
    const std::size_t applied = simulator.gateIndex();
    const bool checkpointDue =
        options.checkpointEvery != 0 && applied % options.checkpointEvery == 0;
    const bool sampleDue = applied % options.sampleEvery == 0 || applied == circuit.size();
    if (!checkpointDue && !sampleDue) {
      continue;
    }
    accumulated += secondsSince(start);
    if (checkpointDue) {
      simulator.saveCheckpointFile(checkpointPath(options, applied));
    }
    if (sampleDue) {
      const auto sampleSpan = obs::Tracer::global().span("sample", "eval");
      TracePoint point;
      point.gateIndex = applied;
      point.nodes = simulator.stateNodes();
      point.seconds = accumulated;
      point.maxBits = simulator.package().system().maxBits();
      point.peakNodes = simulator.package().peakNodes();
      point.cacheHitRate = simulator.package().counters().combinedCacheHitRate();
      point.tableFill = simulator.package().system().distinctValues();
      point.fidelity = simulator.approxFidelity();
      point.prunedNodes = simulator.approxPrunedNodes();
      point.error = std::numeric_limits<double>::quiet_NaN();
      if (reference != nullptr && amplitudesFeasible &&
          sampleOrdinal < reference->samples.size()) {
        const auto numericAmplitudes = simulator.package().amplitudes(simulator.state());
        point.error = accuracyError(numericAmplitudes, reference->samples[sampleOrdinal]);
        lastError = point.error;
      }
      ++sampleOrdinal;
      trace.points.push_back(point);
    }
    start = Clock::now();
  }
  accumulated += secondsSince(start);
  trace.totalSeconds = accumulated;
  trace.finalError = lastError;
  trace.finalFidelity = simulator.approxFidelity();
  trace.prunedNodes = simulator.approxPrunedNodes();
  if (options.captureFinalState) {
    trace.finalStateSnapshot = io::saveVector(simulator.package(), simulator.state());
  }
  finishTrace(trace, simulator);
  recordTimelinePoint(trace, simulator, epsilon);
  return trace;
}

} // namespace

SimulationTrace traceNumeric(const qc::Circuit& circuit, double epsilon,
                             const ReferenceTrajectory* reference, const TraceOptions& options,
                             dd::NumericSystem::Normalization normalization) {
  return traceNumericT<dd::NumericSystem>(circuit, epsilon, reference, options, normalization,
                                          "numeric eps=");
}

SimulationTrace traceNumericExtended(const qc::Circuit& circuit, double epsilon,
                                     const ReferenceTrajectory* reference,
                                     const TraceOptions& options,
                                     dd::NumericSystem::Normalization normalization) {
  return traceNumericT<dd::ExtendedNumericSystem>(
      circuit, epsilon, reference, options,
      static_cast<dd::ExtendedNumericSystem::Normalization>(static_cast<int>(normalization)),
      "numeric-ext eps=");
}

SimulationTrace traceRun(const qc::Circuit& circuit, const RunSpec& spec,
                         const ReferenceTrajectory* reference, const TraceOptions& options,
                         dd::NumericSystem::Normalization normalization) {
  if (spec.extendedPrecision) {
    return traceNumericT<dd::ExtendedNumericSystem>(
        circuit, spec.epsilon, reference, options,
        static_cast<dd::ExtendedNumericSystem::Normalization>(static_cast<int>(normalization)),
        "numeric-ext eps=", spec.approx);
  }
  return traceNumericT<dd::NumericSystem>(circuit, spec.epsilon, reference, options,
                                          normalization, "numeric eps=", spec.approx);
}

} // namespace qadd::eval
