#include "eval/trace.hpp"

#include "eval/accuracy.hpp"
#include "qc/simulator.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>

namespace qadd::eval {

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

SimulationTrace traceAlgebraic(const qc::Circuit& circuit, const TraceOptions& options,
                               dd::AlgebraicSystem::Config config,
                               ReferenceTrajectory* reference) {
  qc::Simulator<dd::AlgebraicSystem> simulator(circuit, config);
  SimulationTrace trace;
  trace.label = simulator.package().system().describe();
  if (reference != nullptr) {
    reference->sampleEvery = options.sampleEvery;
    reference->samples.clear();
  }
  const bool amplitudesFeasible = circuit.qubits() <= options.maxQubitsForAmplitudes;

  double accumulated = 0.0;
  auto start = Clock::now();
  while (simulator.step()) {
    const std::size_t applied = simulator.gateIndex();
    if (applied % options.sampleEvery != 0 && applied != circuit.size()) {
      continue;
    }
    accumulated += secondsSince(start); // pause the clock during sampling
    TracePoint point;
    point.gateIndex = applied;
    point.nodes = simulator.stateNodes();
    point.seconds = accumulated;
    point.error = 0.0; // exact by construction
    point.maxBits = simulator.package().system().maxBits();
    trace.points.push_back(point);
    if (reference != nullptr && amplitudesFeasible) {
      reference->samples.push_back(simulator.package().amplitudes(simulator.state()));
    }
    start = Clock::now();
  }
  accumulated += secondsSince(start);
  trace.totalSeconds = accumulated;
  trace.finalNodes = simulator.stateNodes();
  trace.peakNodes = simulator.package().peakNodes();
  trace.collapsedToZero = simulator.package().system().isZero(simulator.state().w);
  trace.finalError = 0.0;
  return trace;
}

SimulationTrace traceNumeric(const qc::Circuit& circuit, double epsilon,
                             const ReferenceTrajectory* reference, const TraceOptions& options,
                             dd::NumericSystem::Normalization normalization) {
  qc::Simulator<dd::NumericSystem> simulator(circuit, {epsilon, normalization});
  SimulationTrace trace;
  {
    std::ostringstream label;
    label << "numeric eps=" << epsilon;
    trace.label = label.str();
  }
  const bool amplitudesFeasible = circuit.qubits() <= options.maxQubitsForAmplitudes;
  std::size_t sampleOrdinal = 0;

  double accumulated = 0.0;
  double lastError = std::numeric_limits<double>::quiet_NaN();
  auto start = Clock::now();
  while (simulator.step()) {
    const std::size_t applied = simulator.gateIndex();
    if (applied % options.sampleEvery != 0 && applied != circuit.size()) {
      continue;
    }
    accumulated += secondsSince(start);
    TracePoint point;
    point.gateIndex = applied;
    point.nodes = simulator.stateNodes();
    point.seconds = accumulated;
    point.maxBits = simulator.package().system().maxBits();
    point.error = std::numeric_limits<double>::quiet_NaN();
    if (reference != nullptr && amplitudesFeasible &&
        sampleOrdinal < reference->samples.size()) {
      const auto numericAmplitudes = simulator.package().amplitudes(simulator.state());
      point.error = accuracyError(numericAmplitudes, reference->samples[sampleOrdinal]);
      lastError = point.error;
    }
    ++sampleOrdinal;
    trace.points.push_back(point);
    start = Clock::now();
  }
  accumulated += secondsSince(start);
  trace.totalSeconds = accumulated;
  trace.finalNodes = simulator.stateNodes();
  trace.peakNodes = simulator.package().peakNodes();
  trace.collapsedToZero = simulator.package().system().isZero(simulator.state().w);
  trace.finalError = lastError;
  return trace;
}

} // namespace qadd::eval
