#include "eval/reference_cache.hpp"

#include "io/codec.hpp"
#include "io/snapshot.hpp"

#include <chrono>
#include <fstream>
#include <utility>

namespace qadd::eval {

namespace {

constexpr std::array<std::uint8_t, 4> kQrefMagic{'Q', 'R', 'E', 'F'};
constexpr std::uint16_t kQrefVersion = 1;

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::uint32_t circuitFingerprint(const qc::Circuit& circuit) {
  const std::string text = circuit.toText();
  return io::Crc32::of({reinterpret_cast<const std::uint8_t*>(text.data()), text.size()});
}

} // namespace

std::vector<std::uint8_t> encodeReference(const qc::Circuit& circuit, const TraceOptions& options,
                                          const SimulationTrace& trace,
                                          const ReferenceTrajectory& trajectory,
                                          std::span<const std::uint8_t> finalState) {
  io::ByteWriter writer;
  writer.raw(kQrefMagic);
  writer.u16(kQrefVersion);
  writer.u32(circuitFingerprint(circuit));
  writer.u32(circuit.qubits());
  writer.varint(options.sampleEvery);
  writer.string(trace.label);
  writer.varint(trace.points.size());
  for (const TracePoint& point : trace.points) {
    writer.varint(point.gateIndex);
    writer.varint(point.nodes);
    writer.f64(point.seconds);
    writer.f64(point.error);
    writer.varint(point.maxBits);
    writer.varint(point.peakNodes);
    writer.f64(point.cacheHitRate);
    writer.varint(point.tableFill);
  }
  writer.f64(trace.totalSeconds);
  writer.varint(trace.finalNodes);
  writer.varint(trace.peakNodes);
  writer.u8(trace.collapsedToZero ? 1 : 0);
  writer.f64(trace.finalError);
  writer.varint(trajectory.sampleEvery);
  writer.varint(trajectory.samples.size());
  for (const auto& sample : trajectory.samples) {
    writer.varint(sample.size());
    for (const std::complex<double>& amplitude : sample) {
      writer.f64(amplitude.real());
      writer.f64(amplitude.imag());
    }
  }
  writer.block(finalState);
  writer.u32(io::Crc32::of(writer.bytes()));
  return writer.take();
}

bool decodeReference(std::span<const std::uint8_t> bytes, const qc::Circuit& circuit,
                     const TraceOptions& options, SimulationTrace& trace,
                     ReferenceTrajectory& trajectory, std::vector<std::uint8_t>& finalState) {
  constexpr std::size_t kFooterBytes = 4;
  if (bytes.size() < kQrefMagic.size() + 2 + kFooterBytes) {
    throw io::SnapshotError("reference cache too short to hold a QREF header");
  }
  const std::uint32_t storedCrc = io::ByteReader(bytes.last(kFooterBytes)).u32();
  if (storedCrc != io::Crc32::of(bytes.first(bytes.size() - kFooterBytes))) {
    throw io::SnapshotError("reference cache CRC mismatch: file is corrupted");
  }
  io::ByteReader reader(bytes.first(bytes.size() - kFooterBytes));
  const auto magic = reader.raw(kQrefMagic.size());
  if (!std::equal(magic.begin(), magic.end(), kQrefMagic.begin())) {
    throw io::SnapshotError("bad magic bytes (not a QREF reference cache)");
  }
  if (reader.u16() != kQrefVersion) {
    return false; // older/newer cache: recompute
  }
  if (reader.u32() != circuitFingerprint(circuit) || reader.u32() != circuit.qubits() ||
      reader.varint() != options.sampleEvery) {
    return false; // stale cache for some other sweep
  }
  trace = {};
  trajectory = {};
  finalState.clear();
  trace.label = reader.string();
  const std::uint64_t pointCount = reader.varint();
  if (pointCount > bytes.size()) {
    throw io::SnapshotError("implausible trace point count in reference cache");
  }
  trace.points.reserve(static_cast<std::size_t>(pointCount));
  for (std::uint64_t i = 0; i < pointCount; ++i) {
    TracePoint point;
    point.gateIndex = static_cast<std::size_t>(reader.varint());
    point.nodes = static_cast<std::size_t>(reader.varint());
    point.seconds = reader.f64();
    point.error = reader.f64();
    point.maxBits = static_cast<std::size_t>(reader.varint());
    point.peakNodes = static_cast<std::size_t>(reader.varint());
    point.cacheHitRate = reader.f64();
    point.tableFill = static_cast<std::size_t>(reader.varint());
    trace.points.push_back(point);
  }
  trace.totalSeconds = reader.f64();
  trace.finalNodes = static_cast<std::size_t>(reader.varint());
  trace.peakNodes = static_cast<std::size_t>(reader.varint());
  trace.collapsedToZero = reader.u8() != 0;
  trace.finalError = reader.f64();
  trajectory.sampleEvery = static_cast<std::size_t>(reader.varint());
  const std::uint64_t sampleCount = reader.varint();
  if (sampleCount > bytes.size()) {
    throw io::SnapshotError("implausible sample count in reference cache");
  }
  trajectory.samples.reserve(static_cast<std::size_t>(sampleCount));
  for (std::uint64_t i = 0; i < sampleCount; ++i) {
    const std::uint64_t length = reader.varint();
    if (length > reader.remaining() / 16 + 1) {
      throw io::SnapshotError("implausible amplitude count in reference cache");
    }
    std::vector<std::complex<double>> sample;
    sample.reserve(static_cast<std::size_t>(length));
    for (std::uint64_t j = 0; j < length; ++j) {
      const double re = reader.f64();
      const double im = reader.f64();
      sample.emplace_back(re, im);
    }
    trajectory.samples.push_back(std::move(sample));
  }
  const auto blob = reader.block();
  finalState.assign(blob.begin(), blob.end());
  if (!reader.atEnd()) {
    throw io::SnapshotError("trailing bytes in reference cache");
  }
  trace.finalStateSnapshot = finalState;
  return true;
}

CachedAlgebraicReference traceAlgebraicCached(const qc::Circuit& circuit,
                                              const TraceOptions& options,
                                              const std::string& cachePath, bool refresh) {
  CachedAlgebraicReference result;
  if (!refresh) {
    const auto start = Clock::now();
    try {
      const std::vector<std::uint8_t> bytes = io::readBytesFile(cachePath);
      if (decodeReference(bytes, circuit, options, result.trace, result.trajectory,
                          result.finalState)) {
        result.fromCache = true;
        result.cacheSeconds = secondsSince(start);
        result.trace.label += " [cached]";
        return result;
      }
    } catch (const io::SnapshotError&) {
      // missing, corrupted, or stale cache: fall through to recomputation
    }
  }
  TraceOptions computeOptions = options;
  computeOptions.captureFinalState = true;
  result.trace = traceAlgebraic(circuit, computeOptions, {}, &result.trajectory);
  result.finalState = result.trace.finalStateSnapshot;
  const auto start = Clock::now();
  io::writeBytesFile(cachePath, encodeReference(circuit, options, result.trace,
                                                result.trajectory, result.finalState));
  result.cacheSeconds = secondsSince(start);
  return result;
}

} // namespace qadd::eval
