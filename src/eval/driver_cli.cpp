#include "eval/driver_cli.hpp"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <ostream>

namespace qadd::eval {

namespace {

void printUsage(std::ostream& os, const DriverSpec& spec) {
  os << spec.summary << "\n\nusage: ./" << spec.binary;
  for (const DriverPositional& positional : spec.positionals) {
    os << " [" << positional.name << "]";
  }
  os << " [flags]\n";
  if (!spec.positionals.empty()) {
    os << "\npositional arguments:\n";
    for (const DriverPositional& positional : spec.positionals) {
      os << "  " << positional.name << "  " << positional.description << " (default "
         << positional.defaultValue << ")\n";
    }
  }
  os << "\nflags:\n"
        "  --jobs N               worker threads for the numeric ε fan-out\n"
        "                         (default: QADD_JOBS env, else hardware\n"
        "                         concurrency; 1 = serial; value columns of\n"
        "                         the CSV are identical either way)\n"
        "  --stats                print the telemetry counter tables (per\n"
        "                         series + aggregated across workers)\n"
        "  --trace-json <path>    write Chrome-trace span JSON (workers show\n"
        "                         up as separate tid rows; flushed\n"
        "                         incrementally, so crashes keep a partial\n"
        "                         trace)\n"
        "  --timeline <base>      sample the package gauges per gate and per\n"
        "                         sweep point; writes <base>.json and\n"
        "                         <base>.csv (tid column matches --trace-json)\n"
        "  --profile-final        print the per-level structural profile of\n"
        "                         each series' final state DD\n"
        "  --obs-deterministic    zero the wall-clock-derived output columns\n"
        "                         (CSV seconds/cachehitrate, gc seconds,\n"
        "                         timeline seconds) for byte-stable output;\n"
        "                         QADD_OBS_DETERMINISTIC=1 does the same\n"
        "  --checkpoint-every K   write a QCKP checkpoint every K gates\n"
        "  --checkpoint-prefix P  checkpoint path prefix (default\n"
        "                         \"checkpoint_g\"; numeric point k writes\n"
        "                         <P>p<k>_<gate>.qckp)\n"
        "  --approx-fidelity F    prune the state DDs of every numeric point\n"
        "                         under fidelity budget 1-F, F in (0, 1]\n"
        "                         (default policy pergate; see\n"
        "                         docs/APPROXIMATION.md)\n"
        "  --approx-policy P      when to prune: 'pergate' (rebudgeted after\n"
        "                         every gate) or 'oneshot' (once after the\n"
        "                         last gate); requires --approx-fidelity\n";
  if (spec.referenceFlags) {
    os << "  --refresh-reference    recompute the algebraic reference even\n"
          "                         when a valid .qref cache exists\n";
  }
  os << "  --help                 this text\n";
}

[[noreturn]] void usageError(const DriverSpec& spec, const std::string& message) {
  std::cerr << spec.binary << ": " << message << "\n\n";
  printUsage(std::cerr, spec);
  std::exit(2);
}

[[nodiscard]] long parseLong(const DriverSpec& spec, const char* what, const char* text) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') {
    usageError(spec, std::string(what) + ": expected an integer, got '" + text + "'");
  }
  return value;
}

[[nodiscard]] double parseDouble(const DriverSpec& spec, const char* what, const char* text) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    usageError(spec, std::string(what) + ": expected a number, got '" + text + "'");
  }
  return value;
}

} // namespace

DriverCli parseDriverCli(int argc, char** argv, const DriverSpec& spec) {
  // --help first, so it wins over any malformed remainder.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      printUsage(std::cout, spec);
      std::exit(0);
    }
  }

  DriverCli cli;
  // The shared telemetry/snapshot flags strip themselves out of argv.
  cli.obs = parseObsCli(argc, argv);
  cli.jobs = exec::defaultJobs();

  std::size_t positionalIndex = 0;
  cli.positionals.reserve(spec.positionals.size());
  for (const DriverPositional& positional : spec.positionals) {
    cli.positionals.push_back(positional.defaultValue);
  }
  bool haveFidelity = false;
  bool havePolicy = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0) {
      if (i + 1 >= argc) {
        usageError(spec, "--jobs requires an argument");
      }
      const long jobs = parseLong(spec, "--jobs", argv[++i]);
      if (jobs < 1) {
        usageError(spec, "--jobs must be >= 1");
      }
      cli.jobs = static_cast<std::size_t>(jobs);
    } else if (std::strcmp(argv[i], "--approx-fidelity") == 0) {
      if (i + 1 >= argc) {
        usageError(spec, "--approx-fidelity requires an argument");
      }
      const double fidelity = parseDouble(spec, "--approx-fidelity", argv[++i]);
      if (!(fidelity > 0.0) || fidelity > 1.0) {
        usageError(spec, "--approx-fidelity must be in (0, 1]");
      }
      cli.approx.budget = 1.0 - fidelity;
      haveFidelity = true;
    } else if (std::strcmp(argv[i], "--approx-policy") == 0) {
      if (i + 1 >= argc) {
        usageError(spec, "--approx-policy requires an argument");
      }
      const auto policy = dd::parseApproxPolicy(argv[++i]);
      if (!policy.has_value()) {
        usageError(spec, std::string("--approx-policy: expected 'pergate', 'oneshot' or "
                                     "'none', got '") +
                             argv[i] + "'");
      }
      cli.approx.policy = *policy;
      havePolicy = true;
    } else if (argv[i][0] == '-' && argv[i][1] == '-') {
      usageError(spec, std::string("unknown flag '") + argv[i] + "'");
    } else {
      if (positionalIndex >= spec.positionals.size()) {
        usageError(spec, std::string("unexpected argument '") + argv[i] + "'");
      }
      cli.positionals[positionalIndex] =
          parseLong(spec, spec.positionals[positionalIndex].name, argv[i]);
      ++positionalIndex;
    }
  }
  if (havePolicy && !haveFidelity && cli.approx.policy != dd::ApproxPolicy::None) {
    usageError(spec, "--approx-policy requires --approx-fidelity");
  }
  if (haveFidelity && !havePolicy) {
    cli.approx.policy = dd::ApproxPolicy::PerGate; // the paper's default mode
  }
  return cli;
}

void finishDriverCli(const DriverCli& cli, std::ostream& os, const SweepResult& result) {
  finishObsCli(cli.obs, os, result.traces, &result.aggregated);
}

} // namespace qadd::eval
