/// \file reference_cache.hpp
/// Disk cache for the exact algebraic reference of a figure sweep (QREF
/// format).  The fig3/fig5 drivers compare every numeric ε-run against the
/// algebraic simulation of the same circuit; that reference is by far the
/// most expensive part of a sweep and is identical across invocations, so it
/// is computed once and cached: the trace series, the per-sample exact
/// amplitude trajectory, and a QDDS snapshot of the final exact state.
///
/// A cache file is keyed on the circuit's text serialization (CRC-32
/// fingerprint), its width, and the sampling stride; any mismatch — or any
/// corruption — silently falls back to recomputation (and refreshes the
/// file).
///
/// Layout: magic "QREF" | u16 version | u32 circuit CRC | u32 qubits |
/// varint sampleEvery | label | trace fields | trajectory samples |
/// block QDDS final state | u32 CRC-32 over everything before.
#pragma once

#include "eval/trace.hpp"
#include "qc/circuit.hpp"

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace qadd::eval {

/// Result of traceAlgebraicCached(): the algebraic reference, plus where it
/// came from and what the cache round cost.
struct CachedAlgebraicReference {
  SimulationTrace trace;
  ReferenceTrajectory trajectory;
  std::vector<std::uint8_t> finalState; ///< QDDS blob of the final exact state (may be empty)
  bool fromCache = false;
  /// Wall time of the cache interaction: the load on a hit, the save on a
  /// miss.  Compare against trace.totalSeconds for the cache speedup.
  double cacheSeconds = 0.0;
};

/// Serialize a computed reference for `circuit` at stride
/// `options.sampleEvery` as a QREF blob.
[[nodiscard]] std::vector<std::uint8_t>
encodeReference(const qc::Circuit& circuit, const TraceOptions& options,
                const SimulationTrace& trace, const ReferenceTrajectory& trajectory,
                std::span<const std::uint8_t> finalState);

/// Decode a QREF blob.  Returns false when the blob belongs to a different
/// circuit or stride (stale cache); throws io::SnapshotError on structural
/// corruption.
[[nodiscard]] bool decodeReference(std::span<const std::uint8_t> bytes, const qc::Circuit& circuit,
                                   const TraceOptions& options, SimulationTrace& trace,
                                   ReferenceTrajectory& trajectory,
                                   std::vector<std::uint8_t>& finalState);

/// traceAlgebraic() with a disk cache at `cachePath`: on a hit the stored
/// reference is returned (label suffixed " [cached]"); on a miss — or when
/// `refresh` forces one — the reference is computed with captureFinalState
/// on and the cache file is (re)written.  Cache I/O failures degrade to
/// recomputation; only the final save surfaces errors.
[[nodiscard]] CachedAlgebraicReference
traceAlgebraicCached(const qc::Circuit& circuit, const TraceOptions& options,
                     const std::string& cachePath, bool refresh = false);

} // namespace qadd::eval
