/// \file report.hpp
/// Presentation of simulation traces and telemetry: CSV emission (one row
/// per sample, one file per experiment — the data behind each figure),
/// compact console rendering (summary table + ASCII charts of the per-gate
/// series), and machine-readable emitters for the obs::PackageStats counter
/// block (human table, JSON, CSV).
#pragma once

#include "eval/trace.hpp"
#include "obs/stats.hpp"

#include <iosfwd>
#include <string>
#include <vector>

namespace qadd::eval {

/// CSV with columns:
/// series,gate,nodes,seconds,error,maxbits,peaknodes,cachehitrate,tablefill.
void writeCsv(std::ostream& os, const std::vector<SimulationTrace>& traces);

/// One-line-per-series summary (final nodes, peak nodes, total time, final
/// error, zero-collapse flag).
void printSummaryTable(std::ostream& os, const std::vector<SimulationTrace>& traces);

/// Which TracePoint component to plot.
enum class Series { Nodes, Seconds, Error, MaxBits };

/// Multi-series ASCII chart (x = gate index).  `logY` plots log10 of the
/// values (zeros/NaNs are skipped).
void printAsciiChart(std::ostream& os, const std::string& title,
                     const std::vector<SimulationTrace>& traces, Series series, bool logY);

// -- telemetry emitters ---------------------------------------------------------

/// Human-readable rendering of one package's counter block: per-cache
/// hit/miss table, unique tables, node pool, GC, and the weight-table view.
void printStatsTable(std::ostream& os, const obs::PackageStats& stats);

/// Machine-readable JSON object with the same content (one self-contained
/// object; histograms as arrays).
void writeStatsJson(std::ostream& os, const obs::PackageStats& stats);

/// Flat CSV (counter,value) with dotted counter paths, e.g. "cache.mv.hits".
void writeStatsCsv(std::ostream& os, const obs::PackageStats& stats);

// -- CLI glue -------------------------------------------------------------------

/// Telemetry and snapshot flags shared by the bench drivers and examples:
///   --stats                print the per-series counter tables after the run
///   --trace-json <path>    enable the global span tracer and write Chrome
///                          trace JSON to <path> at the end (flushed
///                          incrementally, so a crash keeps a partial trace)
///   --timeline <base>      enable the global timeline sampler and write
///                          <base>.json + <base>.csv at the end of the run
///   --profile-final        capture each series' final state and print its
///                          per-level structural profile (obs::profileDd)
///   --obs-deterministic    zero the wall-clock-derived columns of every
///                          emitter (CSV seconds/cachehitrate, gc.seconds,
///                          timeline seconds) for byte-comparable output
///   --checkpoint-every K   write a QCKP simulator checkpoint every K gates
///   --checkpoint-prefix P  checkpoint path prefix (default "checkpoint_g";
///                          files are <P><gateIndex>.qckp)
///   --refresh-reference    recompute the figure's algebraic reference even
///                          when a valid .qref cache file exists
struct ObsCliOptions {
  bool stats = false;
  std::string traceJsonPath;
  std::string timelinePath; ///< base path; empty = timeline sampler off
  bool profileFinal = false;
  std::size_t checkpointEvery = 0;
  std::string checkpointPrefix = "checkpoint_g";
  bool refreshReference = false;

  /// Copy the checkpoint flags onto trace options; --profile-final needs the
  /// final-state snapshot captured.
  void applyTo(TraceOptions& options) const {
    options.checkpointEvery = checkpointEvery;
    options.checkpointPathPrefix = checkpointPrefix;
    if (profileFinal) {
      options.captureFinalState = true;
    }
  }
};

/// Strip the telemetry flags from argv (compacting it in place, argc
/// updated) and enable the global tracer if --trace-json was given.
[[nodiscard]] ObsCliOptions parseObsCli(int& argc, char** argv);

/// Honour the parsed flags after a run: print per-series stats tables and/or
/// write the collected trace JSON.  When `aggregated` is non-null (the
/// parallel sweep drivers pass SweepResult::aggregated), an extra
/// cross-series table of the merged snapshot — including its `threads` row —
/// is printed after the per-series ones.
void finishObsCli(const ObsCliOptions& options, std::ostream& os,
                  const std::vector<SimulationTrace>& traces,
                  const obs::PackageStats* aggregated = nullptr);

} // namespace qadd::eval
