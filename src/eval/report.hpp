/// \file report.hpp
/// Presentation of simulation traces: CSV emission (one row per sample, one
/// file per experiment — the data behind each figure) and compact console
/// rendering (summary table + ASCII charts of the per-gate series).
#pragma once

#include "eval/trace.hpp"

#include <iosfwd>
#include <string>
#include <vector>

namespace qadd::eval {

/// CSV with columns: series,gate,nodes,seconds,error,maxbits.
void writeCsv(std::ostream& os, const std::vector<SimulationTrace>& traces);

/// One-line-per-series summary (final nodes, peak nodes, total time, final
/// error, zero-collapse flag).
void printSummaryTable(std::ostream& os, const std::vector<SimulationTrace>& traces);

/// Which TracePoint component to plot.
enum class Series { Nodes, Seconds, Error, MaxBits };

/// Multi-series ASCII chart (x = gate index).  `logY` plots log10 of the
/// values (zeros/NaNs are skipped).
void printAsciiChart(std::ostream& os, const std::string& title,
                     const std::vector<SimulationTrace>& traces, Series series, bool logY);

} // namespace qadd::eval
