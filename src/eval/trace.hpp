/// \file trace.hpp
/// Instrumented circuit simulation producing the per-gate series the paper
/// plots in Figures 2-5: DD size (node count), accumulated simulation time,
/// accuracy relative to the exact algebraic result, and — for the algebraic
/// representation — the coefficient bit widths that drive its cost.
#pragma once

#include "core/algebraic_system.hpp"
#include "core/approximation.hpp"
#include "core/numeric_system.hpp"
#include "obs/stats.hpp"
#include "qc/circuit.hpp"

#include <complex>
#include <string>
#include <vector>

namespace qadd::exec {
class ThreadPool; // exec/thread_pool.hpp (kept out of this header's includes)
}

namespace qadd::eval {

struct TracePoint {
  std::size_t gateIndex = 0; ///< gates applied so far
  std::size_t nodes = 0;     ///< state DD size
  double seconds = 0.0;      ///< accumulated simulation time (sampling excluded)
  double error = 0.0;        ///< accuracy metric vs the exact reference (NaN if unavailable)
  std::size_t maxBits = 0;   ///< max coefficient bit width (algebraic only; 64 for numeric)
  std::size_t peakNodes = 0; ///< peak allocated nodes so far (transient multiply blow-up)
  double cacheHitRate = 0.0; ///< combined add/mv/mm cache hit rate so far
  std::size_t tableFill = 0; ///< distinct interned weights so far
  double fidelity = 1.0;     ///< cumulative approximation fidelity so far (1 = no pruning)
  std::size_t prunedNodes = 0; ///< state nodes removed by approximation so far
};

/// One run configuration — the sweep's unit of work.  The three axes of the
/// evaluation in one value: ε (the numeric tolerance knob), the mantissa
/// width (double vs long double), and the fidelity-bounded approximation
/// spec (dd::ApproxSpec — {} means exact-structure simulation, the historic
/// behaviour).  Field order keeps `{epsilon, extendedPrecision}` aggregate
/// initializers source-compatible with the deprecated SweepPoint.
struct RunSpec {
  /// Numeric-table tolerance (0 = bit-exact interning).
  double epsilon = 0.0;
  /// Run on the extended-precision (long double) numeric system.
  bool extendedPrecision = false;
  /// Fidelity-bounded state approximation (policy None = off).
  dd::ApproxSpec approx{};

  friend bool operator==(const RunSpec&, const RunSpec&) = default;
};

/// One garbage-collection run observed mid-simulation.
struct TraceGcEvent {
  std::size_t gateIndex = 0; ///< gates applied when the run fired
  std::size_t swept = 0;     ///< nodes reclaimed
  std::size_t liveAfter = 0; ///< nodes still allocated afterwards
  double seconds = 0.0;      ///< wall time of the run
};

struct SimulationTrace {
  std::string label;
  std::vector<TracePoint> points;
  double totalSeconds = 0.0;
  std::size_t finalNodes = 0;
  std::size_t peakNodes = 0;
  bool collapsedToZero = false; ///< the final state is the zero vector (paper's epsilon=1e-3 failure)
  double finalError = 0.0;
  std::vector<TraceGcEvent> gcEvents; ///< GC runs, so size series can separate sweeps from growth
  obs::PackageStats finalStats;       ///< full telemetry snapshot at the end of the run
  /// QDDS snapshot of the final state DD (filled iff
  /// TraceOptions::captureFinalState; excluded from the timed sections).
  std::vector<std::uint8_t> finalStateSnapshot;
  /// Cumulative approximation fidelity of the whole run (product of per-prune
  /// achieved fidelities; 1.0 when nothing was pruned / no approx spec).
  double finalFidelity = 1.0;
  /// Total state node-count decrease from approximation over the run.
  std::size_t prunedNodes = 0;
};

/// Exact per-gate amplitude snapshots from the algebraic simulation, used as
/// the ground truth of the accuracy metric.
struct ReferenceTrajectory {
  std::size_t sampleEvery = 1;
  /// samples[i] = exact amplitudes after min((i+1)*sampleEvery, gateCount) gates.
  std::vector<std::vector<std::complex<double>>> samples;
};

struct TraceOptions {
  /// Record a trace point (and an accuracy sample) every this many gates.
  std::size_t sampleEvery = 25;
  /// Skip amplitude extraction above this width (2^n blow-up guard).
  qc::Qubit maxQubitsForAmplitudes = 18;
  /// Serialize the final state DD into SimulationTrace::finalStateSnapshot
  /// (a QDDS blob) when the run completes.
  bool captureFinalState = false;
  /// Write a simulator checkpoint every this many gates (0 = off) to
  /// `<checkpointPathPrefix><gateIndex>.qckp`; checkpointing time is
  /// excluded from the trace's timed sections, like sampling.
  std::size_t checkpointEvery = 0;
  std::string checkpointPathPrefix = "checkpoint_g";
  /// Thread pool the DD kernels of this trace fork onto (intra-operation
  /// parallelism; see dd::Package::setExecutor).  nullptr = serial kernels.
  /// Value columns stay byte-identical to a serial run whenever the package
  /// engages concurrency at all (it only does so for order-independent
  /// systems); only time/hit-rate columns may move.
  exec::ThreadPool* kernelPool = nullptr;
};

/// Simulate with the exact algebraic QMDD, recording size/time/bit widths and
/// (optionally) the reference amplitude trajectory for later accuracy
/// comparisons.
[[nodiscard]] SimulationTrace
traceAlgebraic(const qc::Circuit& circuit, const TraceOptions& options = {},
               dd::AlgebraicSystem::Config config = {}, ReferenceTrajectory* reference = nullptr);

/// Simulate with the numerical QMDD at tolerance `epsilon`, measuring the
/// accuracy against `reference` at each sample point (pass nullptr to skip).
[[nodiscard]] SimulationTrace
traceNumeric(const qc::Circuit& circuit, double epsilon, const ReferenceTrajectory* reference,
             const TraceOptions& options = {},
             dd::NumericSystem::Normalization normalization =
                 dd::NumericSystem::Normalization::LeftmostNonzero);

/// traceNumeric() on the extended-precision (long double) numeric system —
/// Section V-A's "scale up the mantissa" experiment as a sweep point.
[[nodiscard]] SimulationTrace
traceNumericExtended(const qc::Circuit& circuit, double epsilon,
                     const ReferenceTrajectory* reference, const TraceOptions& options = {},
                     dd::NumericSystem::Normalization normalization =
                         dd::NumericSystem::Normalization::LeftmostNonzero);

/// Trace one RunSpec: dispatches on the precision axis and installs the
/// spec's approximation policy on the simulator.  The one entry point the
/// sweep executor and all drivers use; traceNumeric/traceNumericExtended
/// remain as the spec-free shims.  Labels stay byte-identical to the
/// historic ones for non-approximated specs ("numeric eps=<ε>"); an active
/// approx spec appends " approx=<policy>:f<target>".
[[nodiscard]] SimulationTrace
traceRun(const qc::Circuit& circuit, const RunSpec& spec, const ReferenceTrajectory* reference,
         const TraceOptions& options = {},
         dd::NumericSystem::Normalization normalization =
             dd::NumericSystem::Normalization::LeftmostNonzero);

} // namespace qadd::eval
