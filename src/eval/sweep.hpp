/// \file sweep.hpp
/// The unified ε-sweep API behind the paper's whole evaluation (Figs. 2–5):
/// one exact algebraic reference plus a list of numeric tolerance runs over
/// the same circuit.  eval::SweepSpec declares the sweep — circuit, points,
/// trace options, reference policy — and eval::runSweep() executes it,
/// computing (or loading, via the QREF disk cache) the algebraic reference
/// once and then fanning the numeric runs out across an exec::ThreadPool.
///
/// Every sweep point simulates in its own dd::Package (thread-confined, see
/// docs/PARALLELISM.md), so the fan-out is embarrassingly parallel and the
/// result is deterministic: traces come back in spec order with values
/// byte-identical to a serial run regardless of worker count or completion
/// order — only wall-clock columns (seconds, address-sensitive cache hit
/// rates) may differ between runs, exactly as between two serial runs.
#pragma once

#include "core/numeric_system.hpp"
#include "eval/reference_cache.hpp"
#include "eval/trace.hpp"
#include "exec/thread_pool.hpp"
#include "obs/stats.hpp"
#include "qc/circuit.hpp"

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace qadd::eval {

/// Deprecated alias, kept for one release: the sweep's unit of work is now
/// eval::RunSpec (eval/trace.hpp), which adds the approximation axis.
/// `{epsilon, extendedPrecision}` initializers keep compiling unchanged.
using SweepPoint = RunSpec;

/// How runSweep() obtains the exact algebraic run of the sweep.
enum class ReferencePolicy {
  /// No algebraic run at all: no reference trajectory, error columns NaN
  /// (Fig. 2, which only studies sizes).
  None,
  /// Compute the algebraic trace + amplitude trajectory in-process, every
  /// invocation (Fig. 4, examples).
  Inline,
  /// traceAlgebraicCached(): load the QREF file at `referenceCachePath` when
  /// it matches the circuit, recompute and (re)write it otherwise (Fig. 3 /
  /// Fig. 5, where the algebraic run dominates the sweep).
  Cached,
};

/// Declarative description of one ε-sweep.
struct SweepSpec {
  explicit SweepSpec(qc::Circuit sweepCircuit) : circuit(std::move(sweepCircuit)) {}

  qc::Circuit circuit;
  std::vector<RunSpec> points;
  TraceOptions options;

  ReferencePolicy reference = ReferencePolicy::Inline;
  /// QREF cache file for ReferencePolicy::Cached.
  std::string referenceCachePath;
  /// Recompute the reference even when the cache file is valid.
  bool refreshReference = false;
  /// Prepend the algebraic trace to the returned traces (ignored — off —
  /// under ReferencePolicy::None).
  bool includeAlgebraicTrace = true;

  dd::NumericSystem::Normalization normalization =
      dd::NumericSystem::Normalization::LeftmostNonzero;

  /// Convenience: append a plain (double-precision, exact-structure) point
  /// per ε.
  SweepSpec& addEpsilons(std::initializer_list<double> epsilons) {
    for (const double epsilon : epsilons) {
      points.push_back({epsilon, false});
    }
    return *this;
  }

  /// Append one fully specified run.
  SweepSpec& addRun(const RunSpec& run) {
    points.push_back(run);
    return *this;
  }

  /// Install one approximation spec on every point declared so far — how the
  /// drivers map a single `--approx-fidelity`/`--approx-policy` pair onto a
  /// whole ε-sweep.  A policy of None leaves the points untouched.
  SweepSpec& applyApprox(const dd::ApproxSpec& approx) {
    if (approx.policy != dd::ApproxPolicy::None) {
      for (RunSpec& point : points) {
        point.approx = approx;
      }
    }
    return *this;
  }
};

/// Everything a figure driver needs from one executed sweep.
struct SweepResult {
  /// Traces in deterministic spec order: the algebraic trace first (when the
  /// spec includes one), then one per RunSpec point in declaration order —
  /// regardless of which worker finished first.
  std::vector<SimulationTrace> traces;
  /// Exact amplitude trajectory of the reference (empty under
  /// ReferencePolicy::None or when the circuit is too wide to sample).
  ReferenceTrajectory trajectory;

  bool referenceFromCache = false;
  /// Wall time of the QREF cache interaction (load on a hit, save on a
  /// miss); 0 for non-cached policies.
  double referenceCacheSeconds = 0.0;

  /// Worker threads used for the numeric fan-out (1 = serial).
  std::size_t jobs = 1;
  /// Wall-clock of the numeric fan-out section (the part `--jobs`
  /// parallelizes; the reference is excluded).
  double numericSweepSeconds = 0.0;
  /// All finalStats of `traces` folded into one snapshot via
  /// obs::PackageStats::operator+= with `threads` set to `jobs` — the block
  /// the report emitters print under --stats.
  obs::PackageStats aggregated;
};

/// Execute `spec`: reference first (serial — it is one simulation and, under
/// Cached, one disk interaction), then every numeric point via
/// exec::parallelFor on `pool`.  Pass nullptr (or --jobs 1, which makes the
/// drivers pass nullptr) for the exact serial path.
///
/// Checkpointing: when options.checkpointEvery is set, each numeric point k
/// writes to `<prefix>p<k>_<gate>.qckp` (the algebraic reference keeps the
/// bare `<prefix><gate>.qckp`), so concurrent points never contend for a
/// path and serial/parallel runs produce identical files.
[[nodiscard]] SweepResult runSweep(const SweepSpec& spec, exec::ThreadPool* pool = nullptr);

} // namespace qadd::eval
