/// \file stable_vector.hpp
/// Append-only vector with stable element addresses and lock-free reads —
/// the storage the weight systems' intern pools need once the fork-join
/// kernels read interned values (`System::value(ref)`) from every worker
/// while new values are still being interned.
///
/// A std::vector cannot serve that role: push_back reallocates, so a reader
/// holding an index can race the element move.  Here elements live in
/// geometrically growing chunks (4096, 8192, 16384, ... — chunk k holds
/// 4096·2^k elements) referenced from a fixed array of atomic chunk
/// pointers, so nothing is ever moved and `operator[]` is two loads plus
/// index arithmetic.
///
/// Concurrency contract:
///  - writers (push_back) must be externally serialized — both intern pools
///    already append under their table mutex;
///  - readers may run concurrently with one writer, but must obtain the
///    index they read through some synchronizing structure (the unique
///    table's stripe mutexes, a computed table's seqlock publish, or
///    size() which is released by push_back) — exactly how interned weight
///    handles travel between kernel workers.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstddef>
#include <type_traits>

namespace qadd::dd {

template <class T> class StableVector {
  static_assert(std::is_nothrow_copy_assignable_v<T> || std::is_copy_assignable_v<T>,
                "StableVector stores by copy assignment");

public:
  /// First chunk holds 2^kBaseShift elements.
  static constexpr std::size_t kBaseShift = 12;
  static constexpr std::size_t kMaxChunks = 40;

  StableVector() = default;
  ~StableVector() {
    for (auto& chunk : chunks_) {
      delete[] chunk.load(std::memory_order_relaxed);
    }
  }

  StableVector(const StableVector&) = delete;
  StableVector& operator=(const StableVector&) = delete;

  [[nodiscard]] std::size_t size() const { return size_.load(std::memory_order_acquire); }
  [[nodiscard]] bool empty() const { return size() == 0; }

  [[nodiscard]] const T& operator[](std::size_t index) const {
    const Location loc = locate(index);
    return chunks_[loc.chunk].load(std::memory_order_acquire)[loc.offset];
  }
  [[nodiscard]] T& operator[](std::size_t index) {
    const Location loc = locate(index);
    return chunks_[loc.chunk].load(std::memory_order_acquire)[loc.offset];
  }

  /// Append an element; returns its index.  Writers must be externally
  /// serialized (see the file comment).
  std::size_t push_back(const T& value) {
    const std::size_t index = size_.load(std::memory_order_relaxed);
    const Location loc = locate(index);
    assert(loc.chunk < kMaxChunks);
    T* chunk = chunks_[loc.chunk].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new T[chunkSize(loc.chunk)]();
      chunks_[loc.chunk].store(chunk, std::memory_order_release);
    }
    chunk[loc.offset] = value;
    size_.store(index + 1, std::memory_order_release);
    return index;
  }

private:
  struct Location {
    std::size_t chunk;
    std::size_t offset;
  };

  [[nodiscard]] static constexpr std::size_t chunkSize(std::size_t chunk) {
    return (std::size_t{1} << kBaseShift) << chunk;
  }

  /// Chunk k covers indices [B·(2^k - 1), B·(2^{k+1} - 1)) with B = 2^12.
  [[nodiscard]] static constexpr Location locate(std::size_t index) {
    const std::size_t j = (index >> kBaseShift) + 1;
    const std::size_t chunk = static_cast<std::size_t>(std::bit_width(j)) - 1;
    const std::size_t offset = index - (((std::size_t{1} << chunk) - 1) << kBaseShift);
    return {chunk, offset};
  }

  std::array<std::atomic<T*>, kMaxChunks> chunks_{};
  std::atomic<std::size_t> size_{0};
};

} // namespace qadd::dd
