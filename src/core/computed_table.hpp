/// \file computed_table.hpp
/// Fixed-size, direct-mapped, lossy memoization cache for the DD package's
/// recursive operations — the design production QMDD packages use in place
/// of unbounded hash maps.  Replaces the former std::unordered_map operation
/// caches: a lookup is one array probe (no allocation, no chaining), an
/// insert overwrites whatever lives in the slot (a counted *eviction* when it
/// displaces a live entry), and clearing is an O(1) epoch bump — an entry is
/// valid only while its stored epoch equals the table's current epoch, so
/// garbageCollect()/clearCaches() never touch the backing array.
///
/// Storage: the entry array is allocated lazily (on the first insert) and is
/// *never zero-initialized* — validity is tracked by a separate occupancy
/// bitmap (1 bit per slot, 8 KB for 2^16 slots), which is the only memory
/// cleared at construction.  This matters because packages are constructed in
/// loops (every simulator, every test fixture): zeroing a dozen multi-
/// megabyte arrays per package — or page-faulting them in from fresh mmaps —
/// costs orders of magnitude more than the operations the caches serve.
/// With the bitmap, the entry array comes from malloc's recycled hot pages
/// with no memset and no page faults, and caches that are never used cost
/// nothing at all.
///
/// Lossless mode (setLossless): losing a memoized result is only a time
/// cost when recomputation is deterministic.  Under a *tolerance-mode*
/// numeric weight system it is not — a recomputed weight can unify onto an
/// ε-neighbor interned in the meantime, perturbing the diagrams — so the
/// package switches its caches to spill displaced live entries into an
/// overflow map instead of dropping them, reproducing the compute-once
/// semantics of the former unbounded unordered_map caches.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <unordered_map>

namespace qadd::dd {

/// \tparam Key    trivially copyable; must provide operator== and a
///                `std::uint64_t hash() const` with good avalanche behavior
///                (the table is direct-mapped, so the low bits index).
/// \tparam Value  trivially copyable payload.
/// \tparam NumEntries  power-of-two slot count.
template <class Key, class Value, std::size_t NumEntries = std::size_t{1} << 14U>
class ComputedTable {
  static_assert((NumEntries & (NumEntries - 1)) == 0, "NumEntries must be a power of two");
  static_assert(std::is_trivially_copyable_v<Key> && std::is_trivially_copyable_v<Value>,
                "ComputedTable requires POD keys/values (entries live in an uninitialized "
                "malloc'd array)");

public:
  static constexpr std::size_t kEntries = NumEntries;

  ComputedTable() = default;
  ~ComputedTable() { std::free(entries_); }

  ComputedTable(const ComputedTable&) = delete;
  ComputedTable& operator=(const ComputedTable&) = delete;

  /// Pointer to the cached value for `key`, or nullptr on miss.  Entries
  /// written before the last clear() are never returned.
  [[nodiscard]] const Value* lookup(const Key& key) const {
    if (entries_ == nullptr) {
      return nullptr; // nothing inserted yet
    }
    const std::size_t slot = slotOf(key);
    if (occupied(slot)) {
      const Entry& entry = entries_[slot];
      if (entry.epoch == epoch_ && entry.key == key) {
        return &entry.value;
      }
    }
    if (lossless_ && !spill_.empty()) {
      if (const auto it = spill_.find(key); it != spill_.end()) {
        return &it->second;
      }
    }
    return nullptr;
  }

  /// Store `key -> value`, overwriting the slot's previous occupant (in
  /// lossless mode a displaced live entry is spilled, not dropped).
  /// Returns true iff a *live* entry with a different key was displaced
  /// (the eviction/spill telemetry event).
  bool insert(const Key& key, const Value& value) {
    if (entries_ == nullptr) {
      allocate();
    }
    const std::size_t slot = slotOf(key);
    Entry& entry = entries_[slot];
    const bool evicted = occupied(slot) && entry.epoch == epoch_ && !(entry.key == key);
    if (evicted && lossless_) {
      spill_.emplace(entry.key, entry.value);
    }
    entry.key = key;
    entry.value = value;
    entry.epoch = epoch_;
    occupancy_[slot >> 6U] |= std::uint64_t{1} << (slot & 63U);
    return evicted;
  }

  /// Invalidate every entry in O(1) by advancing the epoch.  (On the
  /// unreachable-in-practice 2^32 wraparound the occupancy bitmap is reset
  /// for real, so a stale entry can never alias a fresh epoch.)
  void clear() {
    if (++epoch_ == 0) {
      if (occupancy_ != nullptr) {
        std::memset(static_cast<void*>(occupancy_.get()), 0, kOccupancyWords * sizeof(std::uint64_t));
      }
      epoch_ = 1;
    }
    spill_.clear();
  }

  /// Number of clears since construction (for tests/telemetry).
  [[nodiscard]] std::uint32_t epoch() const { return epoch_; }

  /// Retain displaced live entries in an overflow map so no memoized result
  /// is ever lost (see the file comment on order-dependent recomputation).
  void setLossless(bool lossless) { lossless_ = lossless; }
  [[nodiscard]] bool lossless() const { return lossless_; }

  /// Direct-mapped slot index of a key (exposed for collision tests).
  [[nodiscard]] static std::size_t slotOf(const Key& key) {
    return static_cast<std::size_t>(key.hash()) & (NumEntries - 1);
  }

private:
  struct Entry {
    Key key;
    Value value;
    std::uint32_t epoch; ///< valid iff equal to the table's current epoch
  };

  struct KeyHasher {
    std::size_t operator()(const Key& key) const noexcept {
      return static_cast<std::size_t>(key.hash());
    }
  };

  static constexpr std::size_t kOccupancyWords = NumEntries / 64;
  static_assert(kOccupancyWords > 0, "NumEntries must be at least 64");

  [[nodiscard]] bool occupied(std::size_t slot) const {
    return (occupancy_[slot >> 6U] >> (slot & 63U)) & 1U;
  }

  void allocate() {
    // Entries stay uninitialized on purpose — the bitmap is the ground truth
    // for whether a slot has ever been written.
    entries_ = static_cast<Entry*>(std::malloc(NumEntries * sizeof(Entry)));
    if (entries_ == nullptr) {
      throw std::bad_alloc();
    }
    occupancy_ = std::make_unique<std::uint64_t[]>(kOccupancyWords); // zeroed
  }

  Entry* entries_ = nullptr; ///< allocated on first insert; uninitialized
  std::unique_ptr<std::uint64_t[]> occupancy_; ///< 1 bit per slot: ever written
  std::uint32_t epoch_ = 1;
  bool lossless_ = false;
  std::unordered_map<Key, Value, KeyHasher> spill_; ///< displaced live entries (lossless mode)
};

} // namespace qadd::dd
