/// \file computed_table.hpp
/// Fixed-size, direct-mapped, lossy memoization cache for the DD package's
/// recursive operations — the design production QMDD packages use in place
/// of unbounded hash maps.  Replaces the former std::unordered_map operation
/// caches: a lookup is one array probe (no allocation, no chaining), an
/// insert overwrites whatever lives in the slot (a counted *eviction* when it
/// displaces a live entry), and clearing is an O(1) epoch bump — an entry is
/// valid only while its stored epoch equals the table's current epoch, so
/// garbageCollect()/clearCaches() never touch the backing array.
///
/// Storage: the entry array is allocated lazily (on the first insert) and is
/// *never zero-initialized* — validity is tracked by a separate occupancy
/// bitmap (1 bit per slot, 8 KB for 2^16 slots), which is the only memory
/// cleared at construction.  This matters because packages are constructed in
/// loops (every simulator, every test fixture): zeroing a dozen multi-
/// megabyte arrays per package — or page-faulting them in from fresh mmaps —
/// costs orders of magnitude more than the operations the caches serve.
/// With the bitmap, the entry array comes from malloc's recycled hot pages
/// with no memset and no page faults, and caches that are never used cost
/// nothing at all.
///
/// Concurrent mode (setConcurrent): the parallel fork-join kernels probe and
/// fill one shared table from every worker, so each slot becomes a seqlock: a
/// per-slot sequence word (even = stable, odd = write in progress, 0 = never
/// written) guards a relaxed word-wise copy of the entry.  A writer claims
/// the slot with one CAS (even -> odd), stores the entry words relaxed, and
/// publishes with a release store (even again); a reader acquires the
/// sequence, copies the words out, and revalidates the sequence behind an
/// acquire fence — a torn or in-flight slot simply reads as a miss, which is
/// always safe for a lossy memo cache.  Lookups therefore return the value
/// *by copy*, never by pointer: there is no entry address that remains valid
/// after the probe.  Losing an insert whose CAS raced another writer is
/// harmless for the same reason.  The occupancy bitmap and the lossless
/// spill map are serial-mode mechanisms and are not consulted in concurrent
/// mode (setConcurrent clears the table, and lossless mode — which only
/// arises under order-dependent tolerance interning — is mutually exclusive
/// with concurrent kernels by construction).
///
/// Lossless mode (setLossless): losing a memoized result is only a time
/// cost when recomputation is deterministic.  Under a *tolerance-mode*
/// numeric weight system it is not — a recomputed weight can unify onto an
/// ε-neighbor interned in the meantime, perturbing the diagrams — so the
/// package switches its caches to spill displaced live entries into an
/// overflow map instead of dropping them, reproducing the compute-once
/// semantics of the former unbounded unordered_map caches.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <unordered_map>

namespace qadd::dd {

/// \tparam Key    trivially copyable; must provide operator== and a
///                `std::uint64_t hash() const` with good avalanche behavior
///                (the table is direct-mapped, so the low bits index).
/// \tparam Value  trivially copyable payload.
/// \tparam NumEntries  power-of-two slot count.
template <class Key, class Value, std::size_t NumEntries = std::size_t{1} << 14U>
class ComputedTable {
  static_assert((NumEntries & (NumEntries - 1)) == 0, "NumEntries must be a power of two");
  static_assert(std::is_trivially_copyable_v<Key> && std::is_trivially_copyable_v<Value>,
                "ComputedTable requires POD keys/values (entries live in an uninitialized "
                "malloc'd array)");

public:
  static constexpr std::size_t kEntries = NumEntries;

  ComputedTable() = default;
  ~ComputedTable() { std::free(storage_); }

  ComputedTable(const ComputedTable&) = delete;
  ComputedTable& operator=(const ComputedTable&) = delete;

  /// Copy the cached value for `key` into `out` and return true, or return
  /// false on a miss.  Entries written before the last clear() are never
  /// returned.  The copy-out signature (instead of the former `const Value*`
  /// return) is what makes the concurrent seqlock probe possible: no pointer
  /// into the table survives the call.
  [[nodiscard]] bool lookup(const Key& key, Value& out) const {
    if (concurrent_) {
      return lookupConcurrent(key, out);
    }
    if (storage_ == nullptr) {
      return false; // nothing inserted yet
    }
    const std::size_t slot = slotOf(key);
    if (occupied(slot)) {
      const Entry& entry = *entryAt(slot);
      if (entry.epoch == epoch_ && entry.key == key) {
        out = entry.value;
        return true;
      }
    }
    if (lossless_ && !spill_.empty()) {
      if (const auto it = spill_.find(key); it != spill_.end()) {
        out = it->second;
        return true;
      }
    }
    return false;
  }

  /// Store `key -> value`, overwriting the slot's previous occupant (in
  /// lossless mode a displaced live entry is spilled, not dropped).
  /// Returns true iff a *live* entry with a different key was displaced
  /// (the eviction/spill telemetry event).  In concurrent mode an insert
  /// whose slot is mid-write by another worker is dropped silently.
  bool insert(const Key& key, const Value& value) {
    if (concurrent_) {
      return insertConcurrent(key, value);
    }
    if (storage_ == nullptr) {
      allocate();
    }
    const std::size_t slot = slotOf(key);
    Entry& entry = *entryAt(slot);
    const bool evicted = occupied(slot) && entry.epoch == epoch_ && !(entry.key == key);
    if (evicted && lossless_) {
      spill_.emplace(entry.key, entry.value);
    }
    entry.key = key;
    entry.value = value;
    entry.epoch = epoch_;
    occupancy_[slot >> 6U] |= std::uint64_t{1} << (slot & 63U);
    return evicted;
  }

  /// Invalidate every entry in O(1) by advancing the epoch.  (On the
  /// unreachable-in-practice 2^32 wraparound the backing memory is reset for
  /// real, so a stale entry can never alias a fresh epoch.)  Must only be
  /// called while no kernel is running — clears are a quiescent-point
  /// operation (GC, package teardown), which the package guarantees.
  void clear() {
    if (++epoch_ == 0) {
      if (occupancy_ != nullptr) {
        std::memset(static_cast<void*>(occupancy_.get()), 0, kOccupancyWords * sizeof(std::uint64_t));
      }
      if (concurrent_ && storage_ != nullptr) {
        std::memset(storage_, 0, NumEntries * kStride); // epoch 0 entries never validate
      }
      epoch_ = 1;
    }
    spill_.clear();
  }

  /// Number of clears since construction (for tests/telemetry).
  [[nodiscard]] std::uint32_t epoch() const { return epoch_; }

  /// Retain displaced live entries in an overflow map so no memoized result
  /// is ever lost (see the file comment on order-dependent recomputation).
  void setLossless(bool lossless) {
    assert(!(lossless && concurrent_) && "lossless spill is a serial-mode mechanism");
    lossless_ = lossless;
  }
  [[nodiscard]] bool lossless() const { return lossless_; }

  /// Switch the slot protocol to the seqlock scheme described in the file
  /// comment.  Clears the table (serially-written entries carry no sequence
  /// words) and pre-allocates the backing memory, so no allocation races can
  /// occur once workers start probing.  Must be called from a quiescent
  /// point; switching back to serial mode is likewise quiescent-only.
  void setConcurrent(bool concurrent) {
    if (concurrent == concurrent_) {
      return;
    }
    assert(!(concurrent && lossless_) && "lossless spill is a serial-mode mechanism");
    if (concurrent) {
      if (storage_ == nullptr) {
        allocate();
      }
      if (seq_ == nullptr) {
        seq_ = std::make_unique<std::atomic<std::uint32_t>[]>(NumEntries); // zeroed
      }
    }
    clear();
    concurrent_ = concurrent;
  }
  [[nodiscard]] bool concurrent() const { return concurrent_; }

  /// Direct-mapped slot index of a key (exposed for collision tests).
  [[nodiscard]] static std::size_t slotOf(const Key& key) {
    return static_cast<std::size_t>(key.hash()) & (NumEntries - 1);
  }

private:
  struct Entry {
    Key key;
    Value value;
    std::uint32_t epoch; ///< valid iff equal to the table's current epoch
  };

  struct KeyHasher {
    std::size_t operator()(const Key& key) const noexcept {
      return static_cast<std::size_t>(key.hash());
    }
  };

  static constexpr std::size_t kOccupancyWords = NumEntries / 64;
  static_assert(kOccupancyWords > 0, "NumEntries must be at least 64");

  /// Entries are stored at an 8-byte-multiple stride so the concurrent path
  /// can copy them as whole 64-bit words with std::atomic_ref.
  static constexpr std::size_t kEntryWords = (sizeof(Entry) + 7) / 8;
  static constexpr std::size_t kStride = kEntryWords * 8;

  [[nodiscard]] Entry* entryAt(std::size_t slot) const {
    return reinterpret_cast<Entry*>(storage_ + slot * kStride);
  }

  [[nodiscard]] bool occupied(std::size_t slot) const {
    return (occupancy_[slot >> 6U] >> (slot & 63U)) & 1U;
  }

  void allocate() {
    // Entries stay uninitialized on purpose — the bitmap (serial) or the
    // sequence words (concurrent) are the ground truth for slot validity.
    storage_ = static_cast<std::byte*>(std::malloc(NumEntries * kStride));
    if (storage_ == nullptr) {
      throw std::bad_alloc();
    }
    occupancy_ = std::make_unique<std::uint64_t[]>(kOccupancyWords); // zeroed
  }

  [[nodiscard]] bool lookupConcurrent(const Key& key, Value& out) const {
    const std::size_t slot = slotOf(key);
    const std::uint32_t seq1 = seq_[slot].load(std::memory_order_acquire);
    if (seq1 == 0 || (seq1 & 1U) != 0) {
      return false; // never written, or a writer is mid-flight
    }
    alignas(8) std::byte buf[kStride];
    const auto* src = reinterpret_cast<const std::uint64_t*>(entryAt(slot));
    auto* dst = reinterpret_cast<std::uint64_t*>(buf);
    for (std::size_t i = 0; i < kEntryWords; ++i) {
      dst[i] = std::atomic_ref<std::uint64_t>(const_cast<std::uint64_t&>(src[i]))
                   .load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq_[slot].load(std::memory_order_relaxed) != seq1) {
      return false; // torn read: a writer overlapped the copy
    }
    Entry entry;
    std::memcpy(&entry, buf, sizeof(Entry));
    if (entry.epoch != epoch_ || !(entry.key == key)) {
      return false;
    }
    out = entry.value;
    return true;
  }

  bool insertConcurrent(const Key& key, const Value& value) {
    const std::size_t slot = slotOf(key);
    std::uint32_t cur = seq_[slot].load(std::memory_order_relaxed);
    if ((cur & 1U) != 0) {
      return false; // another writer owns the slot; drop the insert
    }
    if (!seq_[slot].compare_exchange_strong(cur, cur + 1, std::memory_order_acquire,
                                            std::memory_order_relaxed)) {
      return false;
    }
    // We own the slot: the previous writer's release publish happens-before
    // our acquire claim, so a plain read of the old entry is safe.
    bool evicted = false;
    if (cur != 0) {
      const Entry& old = *entryAt(slot);
      evicted = old.epoch == epoch_ && !(old.key == key);
    }
    alignas(8) std::byte buf[kStride]{};
    const Entry staged{key, value, epoch_};
    std::memcpy(buf, &staged, sizeof(Entry));
    const auto* src = reinterpret_cast<const std::uint64_t*>(buf);
    auto* dst = reinterpret_cast<std::uint64_t*>(entryAt(slot));
    for (std::size_t i = 0; i < kEntryWords; ++i) {
      std::atomic_ref<std::uint64_t>(dst[i]).store(src[i], std::memory_order_relaxed);
    }
    seq_[slot].store(cur + 2, std::memory_order_release);
    return evicted;
  }

  std::byte* storage_ = nullptr; ///< allocated on first insert; uninitialized
  std::unique_ptr<std::uint64_t[]> occupancy_; ///< 1 bit per slot: ever written (serial mode)
  std::unique_ptr<std::atomic<std::uint32_t>[]> seq_; ///< per-slot seqlock (concurrent mode)
  std::uint32_t epoch_ = 1;
  bool lossless_ = false;
  bool concurrent_ = false;
  std::unordered_map<Key, Value, KeyHasher> spill_; ///< displaced live entries (lossless mode)
};

} // namespace qadd::dd
