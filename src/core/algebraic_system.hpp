/// \file algebraic_system.hpp
/// The paper's contribution: an *algebraic* weight system for QMDDs.  Edge
/// weights are exact elements of Q[omega] in canonical form, interned so that
/// equality/hashing of weights is O(1) and every mathematically present
/// redundancy is detected — perfect accuracy and perfect compactness at once
/// (Section IV).
///
/// Two normalization schemes are provided, mirroring Section IV-B:
///  - QOmegaInverse (Algorithm 2): divide by the leftmost non-zero weight
///    using its exact multiplicative inverse in the field Q[omega];
///  - GcdDOmega (Algorithm 3): stay in D[omega] and divide by the canonical
///    GCD of the weights (adjusted by a unit to the canonical associate).
#pragma once

#include "algebraic/euclidean.hpp"
#include "algebraic/qomega.hpp"
#include "algebraic/small_kernels.hpp"
#include "core/computed_table.hpp"
#include "core/dd_node.hpp"
#include "core/stable_vector.hpp"
#include "obs/stats.hpp"

#include <atomic>
#include <complex>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace qadd::dd {

class AlgebraicSystem {
public:
  using Weight = std::uint32_t;
  static constexpr bool kExact = true;

  /// Normalization schemes:
  ///  - QOmegaInverse: Algorithm 2 (divide by the leftmost non-zero weight;
  ///    exact inverses in the field Q[omega]).  Canonical.  Default.
  ///  - GcdDOmega: Algorithm 3 (divide by the canonical GCD of the weights;
  ///    stays in D[omega]).  Canonical.
  ///  - UnitPart (EXPERIMENTAL, this repository's exploration of the paper's
  ///    future-work direction): extract only the *unit part* of the leftmost
  ///    non-zero weight (sqrt2/omega/(1+sqrt2) factors via the canonical
  ///    associate).  Cheapest of the three and stays in D[omega], but
  ///    canonical only up to non-unit common scalars: equal-up-to-scalar
  ///    subdiagrams may fail to merge, so compactness can degrade and O(1)
  ///    equivalence checking is lost.  Simulated values remain exact.
  enum class Normalization { QOmegaInverse, GcdDOmega, UnitPart };

  struct Config {
    Normalization normalization = Normalization::QOmegaInverse;
    /// Auto-GC watermark for the package built on this system: when the live
    /// node count exceeds this after a decRef, the package garbage-collects.
    /// 0 disables auto-GC (collections only run on demand).
    std::size_t gcWatermark = 0;
    /// Fork-join recursion cutoff for the package's parallel kernels: fork
    /// down to this many *effective* levels below each kernel root.  With
    /// skip-level edges the kernels fast-forward implicit-identity prefixes
    /// in O(1) without recursing, so the budget is only spent on levels that
    /// are actually materialized — a deep skip still forks usefully below
    /// it.  0 derives ceil(log2(workers)) + 2 when an executor is attached.
    std::size_t parallelDepth = 0;
    /// Represent untouched qubits of matrix DDs implicitly via skip-level
    /// edges (identity collapse in makeNode, skip-emitting makeGate).  On by
    /// default; turning it off restores fully materialized identity towers
    /// (same results, O(n) slower gate application — useful for A/B
    /// benchmarking and as a debugging aid).
    bool skipIdentities = true;
  };

  AlgebraicSystem() : AlgebraicSystem(Config{}) {}
  explicit AlgebraicSystem(Config config);

  AlgebraicSystem(const AlgebraicSystem&) = delete;
  AlgebraicSystem& operator=(const AlgebraicSystem&) = delete;

  [[nodiscard]] Weight zero() const { return 0; }
  [[nodiscard]] Weight one() const { return 1; }
  [[nodiscard]] bool isZero(Weight w) const { return w == 0; }
  [[nodiscard]] bool isOne(Weight w) const { return w == 1; }

  [[nodiscard]] Weight add(Weight a, Weight b);
  [[nodiscard]] Weight sub(Weight a, Weight b);
  [[nodiscard]] Weight mul(Weight a, Weight b);
  [[nodiscard]] Weight div(Weight a, Weight b);
  [[nodiscard]] Weight neg(Weight a);
  [[nodiscard]] Weight conj(Weight a);

  /// Normalize the outgoing weights of a node in place and return the factor
  /// to propagate (Algorithm 2 or 3).  \pre at least one weight is non-zero.
  Weight normalize(std::span<Weight> weights);

  [[nodiscard]] const alg::QOmega& value(Weight w) const { return *entries_[w]; }
  [[nodiscard]] Weight intern(const alg::QOmega& value);

  [[nodiscard]] std::complex<double> toComplex(Weight w) const {
    return value(w).toComplex();
  }

  /// Interning is exact and handles are stable, so memoized results always
  /// equal a recomputation; lossy caches are safe.
  [[nodiscard]] bool memoizationOrderDependent() const { return false; }

  /// Switch the intern pool and the op caches between serial and concurrent
  /// operation (quiescent-point only).  Concurrent interning serializes on
  /// one mutex while value(w) reads stay lock-free (entries_ is a
  /// StableVector, so published handles never move).
  void setConcurrent(bool concurrent) {
    concurrent_ = concurrent;
    addCache_.setConcurrent(concurrent);
    subCache_.setConcurrent(concurrent);
    mulCache_.setConcurrent(concurrent);
    divCache_.setConcurrent(concurrent);
    invCache_.setConcurrent(concurrent);
  }
  [[nodiscard]] bool concurrent() const { return concurrent_; }

  [[nodiscard]] std::size_t distinctValues() const { return entries_.size(); }
  /// O(1) view of the process-wide word-kernel fast-path tallies (see
  /// collectObs), cheap enough for per-gate timeline sampling.
  [[nodiscard]] std::uint64_t smallPathHits() const { return alg::detail::smallPathStats().hits; }
  [[nodiscard]] std::uint64_t smallPathSpills() const {
    return alg::detail::smallPathStats().spills;
  }
  /// Largest coefficient/denominator bit width ever interned — the cost
  /// driver the paper identifies for the GSE blow-up (Section V-B).
  [[nodiscard]] std::size_t maxBits() const { return maxBits_.load(std::memory_order_relaxed); }
  /// Fraction of normalizations whose produced weights were all 0 or 1
  /// (trivial); the paper reports Q[omega]-inverse normalization keeps at
  /// least half the weights trivial.
  [[nodiscard]] double trivialWeightFraction() const {
    const std::uint64_t produced = weightsProduced_.load(std::memory_order_relaxed);
    const std::uint64_t trivial = trivialWeightsProduced_.load(std::memory_order_relaxed);
    return produced == 0 ? 1.0 : static_cast<double>(trivial) / static_cast<double>(produced);
  }

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::string describe() const;

  /// Telemetry view of the intern pool: entry count plus the bit-width
  /// histogram of the interned coefficients (histogram[b] = values whose
  /// widest coefficient/denominator is exactly b bits); see
  /// obs::WeightTableStats.
  void collectObs(obs::WeightTableStats& out) const {
    out.system = describe();
    out.entries = entries_.size();
    out.nearMissUnifications = 0; // interning is exact: no accuracy-loss events
    out.bucketOccupancy.clear();
    out.bitWidthHistogram = bitWidthHistogram_;
    out.opCache = opStats_;
    // The word-kernel tallies are process-wide (the arithmetic layer has no
    // handle on which system drove it), matching the other global counters.
    out.smallPathHits = alg::detail::smallPathStats().hits;
    out.smallPathSpills = alg::detail::smallPathStats().spills;
  }

private:
  static constexpr std::size_t kOpCacheEntries = std::size_t{1} << 16U;
  using OpCache = ComputedTable<WeightPairKey, Weight, kOpCacheEntries>;

  [[nodiscard]] static WeightPairKey commutativeKey(Weight a, Weight b) {
    return a <= b ? WeightPairKey{a, b} : WeightPairKey{b, a};
  }

  /// Interned handle of 1/value(w), memoized per handle.  The Q[omega]
  /// inverse (norm computation + gcd canonicalization over huge integers)
  /// dominates algebraic normalization cost, and the same pivot weights
  /// recur constantly.  \pre !isZero(w)
  [[nodiscard]] Weight inverseOf(Weight w);

  /// Memoize a weight operation over interned handles.  Interning is exact
  /// and handles are stable, so this is strictly behavior-preserving; it
  /// short-circuits the Q[omega] big-integer arithmetic (+ canonicalization)
  /// that dominates algebraic simulation.
  template <class Compute> [[nodiscard]] Weight cachedOp(OpCache& cache, WeightPairKey key, Compute&& compute) {
    Weight hit;
    if (cache.lookup(key, hit)) {
      opStats_.hits.inc();
      return hit;
    }
    opStats_.misses.inc();
    const Weight result = compute();
    if (cache.insert(key, result)) {
      opStats_.evictions.inc();
    }
    return result;
  }

  Config config_;
  // Intern pool: map owns the values; entries_ gives O(1) handle -> value.
  // In concurrent mode intern() serializes on internMutex_ while value(w)
  // reads stay lock-free (StableVector entries never move; workers only hold
  // handles that were published through a synchronizing structure).
  std::unordered_map<alg::QOmega, Weight> pool_;
  StableVector<const alg::QOmega*> entries_;
  std::vector<std::uint64_t> bitWidthHistogram_;
  std::mutex internMutex_;
  bool concurrent_ = false;
  std::atomic<std::size_t> maxBits_{0};
  std::atomic<std::uint64_t> weightsProduced_{0};
  std::atomic<std::uint64_t> trivialWeightsProduced_{0};
  OpCache addCache_;
  OpCache subCache_;
  OpCache mulCache_;
  OpCache divCache_;
  OpCache invCache_;
  obs::CacheStats opStats_;
};

} // namespace qadd::dd
