/// \file numeric_system.hpp
/// The state-of-the-art *numerical* weight system for QMDDs (the baseline the
/// paper evaluates): IEEE-754 floating-point complex numbers interned in a
/// tolerance table, with the two normalization flavors from Section II-B
/// (divide by the leftmost non-zero weight, or by the leftmost weight of
/// maximal magnitude as proposed in [29]).
///
/// Templated on the float type: `NumericSystem` (double) is the paper's
/// baseline; `ExtendedNumericSystem` (long double, 64-bit mantissa on x86)
/// backs the precision-scaling experiment of Section V-A's closing remark —
/// a wider mantissa lowers the error floor but can never reach zero.
#pragma once

#include "core/computed_table.hpp"
#include "core/dd_node.hpp"
#include "numeric/complex_table.hpp"
#include "numeric/complex_value.hpp"
#include "obs/stats.hpp"

#include <cassert>
#include <complex>
#include <cstdint>
#include <span>
#include <sstream>
#include <string>

namespace qadd::dd {

template <class FloatT> class BasicNumericSystem {
public:
  using Weight = num::ComplexRef;
  using Float = FloatT;
  using Value = num::BasicComplexValue<FloatT>;
  static constexpr bool kExact = false;

  enum class Normalization { LeftmostNonzero, MaxMagnitude };

  struct Config {
    /// Tolerance epsilon for unifying weights (the paper's central knob).
    double epsilon = 0.0;
    Normalization normalization = Normalization::LeftmostNonzero;
    /// Auto-GC watermark for the package built on this system: when the live
    /// node count exceeds this after a decRef, the package garbage-collects.
    /// 0 disables auto-GC (collections only run on demand).
    std::size_t gcWatermark = 0;
    /// Fork-join recursion cutoff for the package's parallel kernels: fork
    /// down to this many *effective* levels below each kernel root.  With
    /// skip-level edges the kernels fast-forward implicit-identity prefixes
    /// in O(1) without recursing, so the budget is only spent on levels that
    /// are actually materialized — a deep skip still forks usefully below
    /// it.  0 derives ceil(log2(workers)) + 2 when an executor is attached.
    /// Only effective in exact mode (tolerance-mode kernels always run
    /// serially).
    std::size_t parallelDepth = 0;
    /// Represent untouched qubits of matrix DDs implicitly via skip-level
    /// edges (identity collapse in makeNode, skip-emitting makeGate).  On by
    /// default; turning it off restores fully materialized identity towers
    /// (same results, O(n) slower gate application — useful for A/B
    /// benchmarking and as a debugging aid).
    bool skipIdentities = true;
  };

  explicit BasicNumericSystem(Config config)
      : config_(config), table_(static_cast<FloatT>(config.epsilon)) {}

  [[nodiscard]] Weight zero() const { return table_.zeroRef(); }
  [[nodiscard]] Weight one() const { return table_.oneRef(); }
  [[nodiscard]] bool isZero(Weight w) const { return w == table_.zeroRef(); }
  [[nodiscard]] bool isOne(Weight w) const { return w == table_.oneRef(); }

  [[nodiscard]] Weight add(Weight a, Weight b) {
    return cachedOp(addCache_, commutativeKey(a, b),
                    [&] { return table_.lookup(table_.value(a) + table_.value(b)); });
  }
  [[nodiscard]] Weight sub(Weight a, Weight b) {
    return cachedOp(subCache_, WeightPairKey{a, b},
                    [&] { return table_.lookup(table_.value(a) - table_.value(b)); });
  }
  [[nodiscard]] Weight mul(Weight a, Weight b) {
    if (isZero(a) || isZero(b)) {
      return zero();
    }
    if (isOne(a)) {
      return b;
    }
    if (isOne(b)) {
      return a;
    }
    return cachedOp(mulCache_, commutativeKey(a, b),
                    [&] { return table_.lookup(table_.value(a) * table_.value(b)); });
  }
  [[nodiscard]] Weight div(Weight a, Weight b) {
    if (isZero(a)) {
      return zero();
    }
    if (isOne(b)) {
      return a;
    }
    return cachedOp(divCache_, WeightPairKey{a, b},
                    [&] { return table_.lookup(table_.value(a) / table_.value(b)); });
  }
  [[nodiscard]] Weight neg(Weight a) {
    const auto v = table_.value(a);
    return table_.lookup({-v.re, -v.im});
  }
  [[nodiscard]] Weight conj(Weight a) { return table_.lookup(table_.value(a).conj()); }

  /// Normalize the outgoing weights of a node in place and return the factor
  /// to propagate to incoming edges.  \pre at least one weight is non-zero.
  Weight normalize(std::span<Weight> weights) {
    std::size_t pivot = weights.size();
    if (config_.normalization == Normalization::LeftmostNonzero) {
      for (std::size_t i = 0; i < weights.size(); ++i) {
        if (!isZero(weights[i])) {
          pivot = i;
          break;
        }
      }
    } else {
      FloatT best = -1;
      for (std::size_t i = 0; i < weights.size(); ++i) {
        if (isZero(weights[i])) {
          continue;
        }
        const FloatT magnitude = table_.value(weights[i]).squaredMagnitude();
        if (magnitude > best) { // strictly greater keeps the leftmost among equals
          best = magnitude;
          pivot = i;
        }
      }
    }
    assert(pivot < weights.size() && "normalize requires a non-zero weight");
    const Weight factor = weights[pivot];
    if (isOne(factor)) {
      return factor;
    }
    for (std::size_t i = 0; i < weights.size(); ++i) {
      if (isZero(weights[i])) {
        continue;
      }
      // The pivot divides to exactly one by construction; forcing it avoids
      // 0.999999... pivots from floating-point division.
      weights[i] = i == pivot ? one() : div(weights[i], factor);
    }
    return factor;
  }

  /// Raw interned component pair of a weight handle, at full FloatT
  /// precision.  The qadd::io snapshot codecs use this (instead of
  /// toComplex, which narrows to double) so serialized weights round-trip
  /// bit-exactly.
  [[nodiscard]] Value valueOf(Weight w) const { return table_.value(w); }
  /// Intern a raw component pair (the ordinary ε-tolerance lookup).
  [[nodiscard]] Weight fromValue(const Value& v) { return table_.lookup(v); }

  [[nodiscard]] std::complex<double> toComplex(Weight w) const {
    const auto v = table_.value(w);
    return {static_cast<double>(v.re), static_cast<double>(v.im)};
  }
  [[nodiscard]] Weight fromComplex(std::complex<FloatT> z) {
    return table_.lookup(Value::fromStd(z));
  }

  /// True iff memoized results of this system's operations may differ from
  /// a later recomputation (tolerance-mode interning is insertion-order
  /// dependent).  The package keeps its operation caches lossless in that
  /// case so a result, once computed, is never recomputed.
  [[nodiscard]] bool memoizationOrderDependent() const { return !table_.exactMode(); }

  /// Switch the interning table and the op caches between serial and
  /// concurrent operation (quiescent-point only).  The package only requests
  /// concurrency when memoization is order-independent, i.e. exact mode.
  void setConcurrent(bool concurrent) {
    assert(!concurrent || table_.exactMode());
    table_.setConcurrent(concurrent);
    addCache_.setConcurrent(concurrent);
    subCache_.setConcurrent(concurrent);
    mulCache_.setConcurrent(concurrent);
    divCache_.setConcurrent(concurrent);
  }

  [[nodiscard]] std::size_t distinctValues() const { return table_.size(); }
  /// Interface parity with AlgebraicSystem for the timeline sampler: the
  /// numeric table never touches the algebraic word kernels.
  [[nodiscard]] std::uint64_t smallPathHits() const { return 0; }
  [[nodiscard]] std::uint64_t smallPathSpills() const { return 0; }
  /// Bit width of the representation (fixed for floats); interface parity
  /// with AlgebraicSystem.
  [[nodiscard]] std::size_t maxBits() const { return sizeof(FloatT) * 8; }

  /// Telemetry view of the ε-table (entry count, near-miss unifications,
  /// bucket occupancy); see obs::WeightTableStats.
  void collectObs(obs::WeightTableStats& out) const {
    out.system = describe();
    out.entries = table_.size();
    out.nearMissUnifications = table_.nearMissUnifications();
    out.bucketOccupancy = table_.bucketOccupancyHistogram();
    out.bitWidthHistogram.clear();
    out.opCache = opStats_;
    out.smallPathHits = 0; // word kernels are an algebraic-layer concern
    out.smallPathSpills = 0;
  }

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::string describe() const {
    std::ostringstream os;
    os << "numeric" << (sizeof(FloatT) > 8 ? "-ext" : "") << "(eps=" << config_.epsilon << ", "
       << (config_.normalization == Normalization::LeftmostNonzero ? "leftmost" : "max-magnitude")
       << ")";
    return os.str();
  }

private:
  static constexpr std::size_t kOpCacheEntries = std::size_t{1} << 16U;
  using OpCache = ComputedTable<WeightPairKey, Weight, kOpCacheEntries>;

  [[nodiscard]] static WeightPairKey commutativeKey(Weight a, Weight b) {
    return a <= b ? WeightPairKey{a, b} : WeightPairKey{b, a};
  }

  /// Memoize a weight operation — but only under bit-exact interning.  With
  /// a tolerance, the ref a value unifies onto depends on what was interned
  /// in the meantime (the 3x3 grid scan can match a later entry), so a
  /// cached result could differ from a recomputation and perturb the
  /// diagrams; the tolerant path always recomputes.
  template <class Compute>
  [[nodiscard]] Weight cachedOp(OpCache& cache, WeightPairKey key, Compute&& compute) {
    if (!table_.exactMode()) {
      return compute();
    }
    Weight hit;
    if (cache.lookup(key, hit)) {
      opStats_.hits.inc();
      return hit;
    }
    opStats_.misses.inc();
    const Weight result = compute();
    if (cache.insert(key, result)) {
      opStats_.evictions.inc();
    }
    return result;
  }

  Config config_;
  num::BasicComplexTable<FloatT> table_;
  OpCache addCache_;
  OpCache subCache_;
  OpCache mulCache_;
  OpCache divCache_;
  obs::CacheStats opStats_;
};

/// The paper's baseline: IEEE-754 double precision.
using NumericSystem = BasicNumericSystem<double>;
/// Extended precision (x87 long double): the "scaling up the bit width"
/// thought experiment of Section V-A, made runnable.
using ExtendedNumericSystem = BasicNumericSystem<long double>;

} // namespace qadd::dd
