/// \file package.hpp
/// The QMDD package: weighted decision diagrams for quantum state vectors
/// (2 successors per node) and unitary matrices (4 successors per node),
/// templated over the weight system (NumericSystem or AlgebraicSystem).
///
/// Follows the QMDD construction of [15]/Section II-B: nodes are normalized
/// (the normalization policy lives in the weight system), stored in unique
/// tables for canonicity, and manipulated through cached recursive algorithms
/// (addition, matrix-vector / matrix-matrix multiplication, Kronecker
/// product, conjugate transpose, inner product).  Diagrams are
/// quasi-reduced: every root-to-terminal path visits every variable, which
/// keeps the algorithms uniform (no level-skipping case analysis).
///
/// Reference counting: a node holds one reference per parent edge plus any
/// external references (incRef/decRef).  garbageCollect() clears the
/// operation caches and sweeps ref == 0 nodes.
#pragma once

#include "algebraic/qomega.hpp" // exact amplitude accumulation (algebraic system)
#include "obs/stats.hpp"
#include "obs/tracer.hpp"

#include <array>
#include <cassert>
#include <chrono>
#include <complex>
#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace qadd::dd {

/// Variable index; 0 is the topmost qubit (root level), as in the paper.
using Qubit = std::uint32_t;

/// Result of one garbage-collection run.
struct GcReport {
  std::size_t swept = 0;      ///< nodes returned to the free lists
  std::size_t liveBefore = 0; ///< allocated nodes before the sweep
  std::size_t liveAfter = 0;  ///< allocated nodes after the sweep
  double seconds = 0.0;       ///< wall time of cache clearing + sweeping
};

/// Bitmask selecting operation caches for Package::clearCaches().
enum class CacheKind : std::uint16_t {
  VAdd = 1U << 0,
  MAdd = 1U << 1,
  MV = 1U << 2,
  MM = 1U << 3,
  VKron = 1U << 4,
  MKron = 1U << 5,
  Transpose = 1U << 6,
  Inner = 1U << 7,
  Trace = 1U << 8,
  All = (1U << 9) - 1,
};

[[nodiscard]] constexpr CacheKind operator|(CacheKind a, CacheKind b) {
  return static_cast<CacheKind>(static_cast<std::uint16_t>(a) | static_cast<std::uint16_t>(b));
}
[[nodiscard]] constexpr bool contains(CacheKind mask, CacheKind kind) {
  return (static_cast<std::uint16_t>(mask) & static_cast<std::uint16_t>(kind)) != 0;
}

template <class System> class Package {
public:
  using Weight = typename System::Weight;

  struct VNode;
  struct MNode;

  /// Weighted edge into a vector DD.  node == nullptr means the edge goes to
  /// the terminal.
  struct VEdge {
    VNode* node = nullptr;
    Weight w{};
    [[nodiscard]] bool isTerminal() const { return node == nullptr; }
    friend bool operator==(const VEdge&, const VEdge&) = default;
  };

  /// Weighted edge into a matrix DD.
  struct MEdge {
    MNode* node = nullptr;
    Weight w{};
    [[nodiscard]] bool isTerminal() const { return node == nullptr; }
    friend bool operator==(const MEdge&, const MEdge&) = default;
  };

  struct VNode {
    std::array<VEdge, 2> e;
    Qubit var = 0;
    std::uint32_t ref = 0;
  };

  struct MNode {
    std::array<MEdge, 4> e;
    Qubit var = 0;
    std::uint32_t ref = 0;
  };

  /// 2x2 gate matrix given as weights [u00, u01, u10, u11].
  using GateMatrix = std::array<Weight, 4>;

  explicit Package(Qubit nqubits, typename System::Config config = {})
      : nqubits_(nqubits), system_(config) {}

  Package(const Package&) = delete;
  Package& operator=(const Package&) = delete;

  [[nodiscard]] Qubit qubits() const { return nqubits_; }
  [[nodiscard]] System& system() { return system_; }
  [[nodiscard]] const System& system() const { return system_; }

  // -- canonical edges ---------------------------------------------------------

  [[nodiscard]] VEdge zeroVector() const { return {nullptr, system_.zero()}; }
  [[nodiscard]] MEdge zeroMatrix() const { return {nullptr, system_.zero()}; }

  // -- node construction (normalizing + unique table) ---------------------------

  /// Create/lookup the canonical vector node; normalizes the children weights
  /// and folds the extracted factor into the returned edge weight.
  [[nodiscard]] VEdge makeVNode(Qubit var, std::array<VEdge, 2> children) {
    return makeNode<VEdge, VNode, 2>(var, children, vUnique_, vPool_, vFree_);
  }

  /// Create/lookup the canonical matrix node (children in the paper's order:
  /// top-left, top-right, bottom-left, bottom-right).
  [[nodiscard]] MEdge makeMNode(Qubit var, std::array<MEdge, 4> children) {
    return makeNode<MEdge, MNode, 4>(var, children, mUnique_, mPool_, mFree_);
  }

  // -- reference counting / garbage collection ---------------------------------

  void incRef(const VEdge& e) {
    if (e.node != nullptr) {
      ++e.node->ref;
    }
  }
  void decRef(const VEdge& e) {
    if (e.node != nullptr) {
      assert(e.node->ref > 0);
      --e.node->ref;
    }
  }
  void incRef(const MEdge& e) {
    if (e.node != nullptr) {
      ++e.node->ref;
    }
  }
  void decRef(const MEdge& e) {
    if (e.node != nullptr) {
      assert(e.node->ref > 0);
      --e.node->ref;
    }
  }

  /// Drop all operation caches and free every node that is no longer
  /// reachable from an externally referenced edge.
  GcReport garbageCollect() {
    const auto span = obs::Tracer::global().span("gc", "dd");
    const auto start = std::chrono::steady_clock::now();
    GcReport report;
    report.liveBefore = allocatedNodes();
    clearCaches();
    sweep<VNode, 2>(vUnique_, vFree_);
    sweep<MNode, 4>(mUnique_, mFree_);
    report.liveAfter = allocatedNodes();
    report.swept = report.liveBefore - report.liveAfter;
    report.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    stats_.gc.runs.inc();
    stats_.gc.nodesSwept.inc(report.swept);
    if constexpr (obs::kEnabled) {
      stats_.gc.seconds += report.seconds;
    }
    return report;
  }

  /// Drop the selected operation caches (all of them by default).
  void clearCaches(CacheKind kinds = CacheKind::All) {
    if (contains(kinds, CacheKind::VAdd)) {
      vAddCache_.clear();
    }
    if (contains(kinds, CacheKind::MAdd)) {
      mAddCache_.clear();
    }
    if (contains(kinds, CacheKind::MV)) {
      mvCache_.clear();
    }
    if (contains(kinds, CacheKind::MM)) {
      mmCache_.clear();
    }
    if (contains(kinds, CacheKind::VKron)) {
      vKronCache_.clear();
    }
    if (contains(kinds, CacheKind::MKron)) {
      mKronCache_.clear();
    }
    if (contains(kinds, CacheKind::Transpose)) {
      transposeCache_.clear();
    }
    if (contains(kinds, CacheKind::Inner)) {
      innerCache_.clear();
    }
    if (contains(kinds, CacheKind::Trace)) {
      traceCache_.clear();
    }
  }

  /// Number of live (allocated, not freed) nodes across both node types.
  [[nodiscard]] std::size_t allocatedNodes() const {
    return vPool_.size() + mPool_.size() - vFreeCount_ - mFreeCount_;
  }
  [[nodiscard]] std::size_t peakNodes() const { return peakNodes_; }

  // -- telemetry ----------------------------------------------------------------

  /// Raw counter block (no gauges filled); cheap, suitable for sampling in
  /// tight loops.
  [[nodiscard]] const obs::PackageStats& counters() const { return stats_; }

  /// Snapshot of all counters plus the gauges: live/peak node counts and the
  /// weight-table view of the active system (entry count, ε near-misses and
  /// bucket occupancy for the numeric table; bit-width histogram for the
  /// algebraic intern pool).
  [[nodiscard]] obs::PackageStats stats() const {
    obs::PackageStats snapshot = stats_;
    snapshot.liveNodes = allocatedNodes();
    snapshot.peakNodes = peakNodes_;
    system_.collectObs(snapshot.weights);
    return snapshot;
  }

  /// Zero all counters (gauges are derived, so they are unaffected).
  void resetStats() { stats_ = {}; }

  // -- builders -----------------------------------------------------------------

  /// |b_0 b_1 ... b_{n-1}> with b_0 the top qubit.
  [[nodiscard]] VEdge makeBasisState(std::span<const bool> bits) {
    assert(bits.size() == nqubits_);
    VEdge e{nullptr, system_.one()};
    for (Qubit var = nqubits_; var-- > 0;) {
      if (bits[var]) {
        e = makeVNode(var, {zeroVector(), e});
      } else {
        e = makeVNode(var, {e, zeroVector()});
      }
    }
    return e;
  }

  /// |00...0>.
  [[nodiscard]] VEdge makeZeroState() {
    VEdge e{nullptr, system_.one()};
    for (Qubit var = nqubits_; var-- > 0;) {
      e = makeVNode(var, {e, zeroVector()});
    }
    return e;
  }

  /// Identity on all qubits.
  [[nodiscard]] MEdge makeIdentity() {
    MEdge e{nullptr, system_.one()};
    for (Qubit var = nqubits_; var-- > 0;) {
      e = makeMNode(var, {e, zeroMatrix(), zeroMatrix(), e});
    }
    return e;
  }

  /// Build the DD of an arbitrary state vector given its 2^n amplitudes as
  /// weights (index 0 = |0...0>, qubit 0 is the most significant bit).
  /// Performs the usual bottom-up construction with normalization, so equal
  /// (sub-)vectors share nodes.  \pre amplitudes.size() == 2^qubits()
  [[nodiscard]] VEdge makeStateFromWeights(std::span<const Weight> amplitudes) {
    assert(amplitudes.size() == (std::size_t{1} << nqubits_));
    return buildStateRange(0, amplitudes);
  }

  /// Control polarity for controlled gates.
  enum class Control : std::uint8_t { Positive, Negative };

  /// DD of the n-qubit unitary applying `u` to `target`, conditioned on the
  /// given controls; identity on every other qubit.  Built as
  /// I + P_controls (x) (U - I), which handles arbitrary control sets.
  [[nodiscard]] MEdge makeGate(const GateMatrix& u, Qubit target,
                               std::span<const std::pair<Qubit, Control>> controls = {}) {
    assert(target < nqubits_);
    if (controls.empty()) {
      // Plain chain: identity above and below, U at the target level.
      MEdge e{nullptr, system_.one()};
      for (Qubit var = nqubits_; var-- > 0;) {
        if (var == target) {
          e = makeMNode(var, {scale(e, u[0]), scale(e, u[1]), scale(e, u[2]), scale(e, u[3])});
        } else {
          e = makeMNode(var, {e, zeroMatrix(), zeroMatrix(), e});
        }
      }
      return e;
    }
    // Controlled: G = I + C where C applies (U - I) on the target restricted
    // to the subspace selected by the controls.
    const GateMatrix uMinusI{system_.sub(u[0], system_.one()), u[1], u[2],
                             system_.sub(u[3], system_.one())};
    MEdge c{nullptr, system_.one()};
    for (Qubit var = nqubits_; var-- > 0;) {
      bool isControl = false;
      Control polarity = Control::Positive;
      for (const auto& [q, pol] : controls) {
        assert(q < nqubits_ && q != target);
        if (q == var) {
          isControl = true;
          polarity = pol;
          break;
        }
      }
      if (var == target) {
        c = makeMNode(var, {scale(c, uMinusI[0]), scale(c, uMinusI[1]), scale(c, uMinusI[2]),
                            scale(c, uMinusI[3])});
      } else if (isControl) {
        if (polarity == Control::Positive) {
          c = makeMNode(var, {zeroMatrix(), zeroMatrix(), zeroMatrix(), c});
        } else {
          c = makeMNode(var, {c, zeroMatrix(), zeroMatrix(), zeroMatrix()});
        }
      } else {
        c = makeMNode(var, {c, zeroMatrix(), zeroMatrix(), c});
      }
    }
    return add(makeIdentity(), c);
  }

  // -- arithmetic ---------------------------------------------------------------

  [[nodiscard]] VEdge add(const VEdge& a, const VEdge& b) {
    if (system_.isZero(a.w)) {
      return b;
    }
    if (system_.isZero(b.w)) {
      return a;
    }
    if (a.isTerminal() && b.isTerminal()) {
      return {nullptr, system_.add(a.w, b.w)};
    }
    assert(!a.isTerminal() && !b.isTerminal() && a.node->var == b.node->var);
    // Canonical operand order (addition is commutative).
    const VEdge& x = orderForAdd(a, b) ? a : b;
    const VEdge& y = orderForAdd(a, b) ? b : a;
    const EdgeKey key{x.node, x.w, y.node, y.w};
    if (const auto it = vAddCache_.find(key); it != vAddCache_.end()) {
      stats_.vAdd.hits.inc();
      return it->second;
    }
    stats_.vAdd.misses.inc();
    std::array<VEdge, 2> children;
    for (std::size_t i = 0; i < 2; ++i) {
      children[i] = add(weighted(x.node->e[i], x.w), weighted(y.node->e[i], y.w));
    }
    const VEdge result = makeVNode(x.node->var, children);
    vAddCache_.emplace(key, result);
    return result;
  }

  [[nodiscard]] MEdge add(const MEdge& a, const MEdge& b) {
    if (system_.isZero(a.w)) {
      return b;
    }
    if (system_.isZero(b.w)) {
      return a;
    }
    if (a.isTerminal() && b.isTerminal()) {
      return {nullptr, system_.add(a.w, b.w)};
    }
    assert(!a.isTerminal() && !b.isTerminal() && a.node->var == b.node->var);
    const bool ordered = std::less<const void*>{}(a.node, b.node) ||
                         (a.node == b.node && a.w <= b.w);
    const MEdge& x = ordered ? a : b;
    const MEdge& y = ordered ? b : a;
    const EdgeKey key{x.node, x.w, y.node, y.w};
    if (const auto it = mAddCache_.find(key); it != mAddCache_.end()) {
      stats_.mAdd.hits.inc();
      return it->second;
    }
    stats_.mAdd.misses.inc();
    std::array<MEdge, 4> children;
    for (std::size_t i = 0; i < 4; ++i) {
      children[i] = add(weighted(x.node->e[i], x.w), weighted(y.node->e[i], y.w));
    }
    const MEdge result = makeMNode(x.node->var, children);
    mAddCache_.emplace(key, result);
    return result;
  }

  /// Matrix-vector product M|v>.
  [[nodiscard]] VEdge multiply(const MEdge& m, const VEdge& v) {
    if (system_.isZero(m.w) || system_.isZero(v.w)) {
      return zeroVector();
    }
    const Weight w = system_.mul(m.w, v.w);
    if (m.isTerminal() && v.isTerminal()) {
      return {nullptr, w};
    }
    assert(!m.isTerminal() && !v.isTerminal() && m.node->var == v.node->var);
    const NodePairKey key{m.node, v.node};
    if (const auto it = mvCache_.find(key); it != mvCache_.end()) {
      stats_.mv.hits.inc();
      return weighted(it->second, w);
    }
    stats_.mv.misses.inc();
    std::array<VEdge, 2> children;
    for (std::size_t row = 0; row < 2; ++row) {
      const VEdge partial0 = multiply(m.node->e[2 * row], v.node->e[0]);
      const VEdge partial1 = multiply(m.node->e[2 * row + 1], v.node->e[1]);
      children[row] = add(partial0, partial1);
    }
    const VEdge result = makeVNode(m.node->var, children);
    mvCache_.emplace(key, result);
    return weighted(result, w);
  }

  /// Matrix-matrix product A*B.
  [[nodiscard]] MEdge multiply(const MEdge& a, const MEdge& b) {
    if (system_.isZero(a.w) || system_.isZero(b.w)) {
      return zeroMatrix();
    }
    const Weight w = system_.mul(a.w, b.w);
    if (a.isTerminal() && b.isTerminal()) {
      return {nullptr, w};
    }
    assert(!a.isTerminal() && !b.isTerminal() && a.node->var == b.node->var);
    const NodePairKey key{a.node, b.node};
    if (const auto it = mmCache_.find(key); it != mmCache_.end()) {
      stats_.mm.hits.inc();
      return weighted(it->second, w);
    }
    stats_.mm.misses.inc();
    std::array<MEdge, 4> children;
    for (std::size_t row = 0; row < 2; ++row) {
      for (std::size_t col = 0; col < 2; ++col) {
        const MEdge p0 = multiply(a.node->e[2 * row], b.node->e[col]);
        const MEdge p1 = multiply(a.node->e[2 * row + 1], b.node->e[2 + col]);
        children[2 * row + col] = add(p0, p1);
      }
    }
    const MEdge result = makeMNode(a.node->var, children);
    mmCache_.emplace(key, result);
    return weighted(result, w);
  }

  /// |top> (x) |bottom>; top's variables must all lie above bottom's.
  [[nodiscard]] VEdge kronecker(const VEdge& top, const VEdge& bottom) {
    if (system_.isZero(top.w) || system_.isZero(bottom.w)) {
      return zeroVector();
    }
    const Weight w = system_.mul(top.w, bottom.w);
    if (top.isTerminal()) {
      return weighted(VEdge{bottom.node, system_.one()}, w);
    }
    const NodePairKey key{top.node, bottom.node};
    if (const auto it = vKronCache_.find(key); it != vKronCache_.end()) {
      stats_.vKron.hits.inc();
      return weighted(it->second, w);
    }
    stats_.vKron.misses.inc();
    const VEdge stripBottom{bottom.node, system_.one()};
    std::array<VEdge, 2> children;
    for (std::size_t i = 0; i < 2; ++i) {
      children[i] = kronecker(top.node->e[i], stripBottom);
    }
    const VEdge result = makeVNode(top.node->var, children);
    vKronCache_.emplace(key, result);
    return weighted(result, w);
  }

  /// A (x) B for matrices; same variable discipline as the vector overload.
  [[nodiscard]] MEdge kronecker(const MEdge& top, const MEdge& bottom) {
    if (system_.isZero(top.w) || system_.isZero(bottom.w)) {
      return zeroMatrix();
    }
    const Weight w = system_.mul(top.w, bottom.w);
    if (top.isTerminal()) {
      return weighted(MEdge{bottom.node, system_.one()}, w);
    }
    const NodePairKey key{top.node, bottom.node};
    if (const auto it = mKronCache_.find(key); it != mKronCache_.end()) {
      stats_.mKron.hits.inc();
      return weighted(it->second, w);
    }
    stats_.mKron.misses.inc();
    const MEdge stripBottom{bottom.node, system_.one()};
    std::array<MEdge, 4> children;
    for (std::size_t i = 0; i < 4; ++i) {
      children[i] = kronecker(top.node->e[i], stripBottom);
    }
    const MEdge result = makeMNode(top.node->var, children);
    mKronCache_.emplace(key, result);
    return weighted(result, w);
  }

  /// Conjugate transpose (adjoint) of a matrix DD.
  [[nodiscard]] MEdge conjugateTranspose(const MEdge& a) {
    if (system_.isZero(a.w)) {
      return zeroMatrix();
    }
    const Weight w = system_.conj(a.w);
    if (a.isTerminal()) {
      return {nullptr, w};
    }
    if (const auto it = transposeCache_.find(a.node); it != transposeCache_.end()) {
      stats_.transpose.hits.inc();
      return weighted(it->second, w);
    }
    stats_.transpose.misses.inc();
    std::array<MEdge, 4> children{
        conjugateTranspose(a.node->e[0]), conjugateTranspose(a.node->e[2]),
        conjugateTranspose(a.node->e[1]), conjugateTranspose(a.node->e[3])};
    const MEdge result = makeMNode(a.node->var, children);
    transposeCache_.emplace(a.node, result);
    return weighted(result, w);
  }

  /// True iff the two matrix DDs represent the same unitary up to a global
  /// phase: canonical diagrams make this a root comparison plus one
  /// magnitude check on the root-weight ratio.  (Useful when comparing
  /// against Solovay-Kitaev output, which is projective.)
  [[nodiscard]] bool equalUpToGlobalPhase(const MEdge& a, const MEdge& b) {
    if (a.node != b.node) {
      return false;
    }
    if (a.w == b.w) {
      return true;
    }
    if (system_.isZero(a.w) || system_.isZero(b.w)) {
      return false;
    }
    // ratio = a.w / b.w must have |ratio| == 1.
    const Weight ratio = system_.div(a.w, b.w);
    const Weight magnitude = system_.mul(ratio, system_.conj(ratio));
    return system_.isOne(magnitude);
  }

  /// Fidelity |<a|b>|^2 as a double (exact up to the final conversion for
  /// the algebraic system).
  [[nodiscard]] double fidelity(const VEdge& a, const VEdge& b) {
    const auto overlap = system_.toComplex(innerProduct(a, b));
    return std::norm(overlap);
  }

  /// Expectation value <psi| M |psi> as a weight.
  [[nodiscard]] Weight expectationValue(const MEdge& observable, const VEdge& state) {
    const VEdge applied = multiply(observable, state);
    return innerProduct(state, applied);
  }

  /// Matrix trace tr(A) as a weight (sum of the 2^n diagonal entries,
  /// computed in O(|DD|) with memoization).
  [[nodiscard]] Weight trace(const MEdge& a) {
    if (system_.isZero(a.w)) {
      return system_.zero();
    }
    if (a.isTerminal()) {
      // Terminal 1x1 "matrix" scaled by the identity chain below: the
      // caller's variable bookkeeping guarantees terminals only occur at
      // the bottom, so the contribution is just the weight.
      return a.w;
    }
    Weight per = system_.zero();
    if (const auto it = traceCache_.find(a.node); it != traceCache_.end()) {
      stats_.trace.hits.inc();
      per = it->second;
    } else {
      stats_.trace.misses.inc();
      per = system_.add(trace(a.node->e[0]), trace(a.node->e[3]));
      traceCache_.emplace(a.node, per);
    }
    return system_.mul(a.w, per);
  }

  /// Process fidelity |tr(A^dagger B)| / 2^n — the standard "equal up to
  /// global phase" metric of DD-based equivalence checkers.  1.0 iff the
  /// unitaries coincide up to phase.
  [[nodiscard]] double processFidelity(const MEdge& a, const MEdge& b) {
    const auto overlap = multiply(conjugateTranspose(a), b);
    const auto traced = system_.toComplex(trace(overlap));
    return std::abs(traced) / std::ldexp(1.0, static_cast<int>(nqubits_));
  }

  /// <a|b> (conjugate-linear in a).
  [[nodiscard]] Weight innerProduct(const VEdge& a, const VEdge& b) {
    if (system_.isZero(a.w) || system_.isZero(b.w)) {
      return system_.zero();
    }
    const Weight w = system_.mul(system_.conj(a.w), b.w);
    if (a.isTerminal() && b.isTerminal()) {
      return w;
    }
    assert(!a.isTerminal() && !b.isTerminal() && a.node->var == b.node->var);
    const NodePairKey key{a.node, b.node};
    if (const auto it = innerCache_.find(key); it != innerCache_.end()) {
      stats_.inner.hits.inc();
      return system_.mul(w, it->second);
    }
    stats_.inner.misses.inc();
    Weight sum = system_.zero();
    for (std::size_t i = 0; i < 2; ++i) {
      sum = system_.add(sum, innerProduct(a.node->e[i], b.node->e[i]));
    }
    innerCache_.emplace(key, sum);
    return system_.mul(w, sum);
  }

  // -- inspection ----------------------------------------------------------------

  /// Number of DD nodes reachable from the edge (terminals not counted) —
  /// the compactness measure plotted in the paper's figures.
  [[nodiscard]] std::size_t countNodes(const VEdge& e) const {
    std::unordered_set<const VNode*> visited;
    countNodesImpl<VNode>(e.node, visited);
    return visited.size();
  }
  [[nodiscard]] std::size_t countNodes(const MEdge& e) const {
    std::unordered_set<const MNode*> visited;
    countNodesImpl<MNode>(e.node, visited);
    return visited.size();
  }

  /// All 2^n amplitudes as complex doubles.  For the algebraic system the
  /// path products are accumulated exactly and converted only at the leaves,
  /// so the result carries a single final rounding.
  [[nodiscard]] std::vector<std::complex<double>> amplitudes(const VEdge& e) const {
    std::vector<std::complex<double>> out(std::size_t{1} << nqubits_);
    if constexpr (System::kExact) {
      amplitudesExact(e.node, system_.value(e.w), 0, out);
    } else {
      amplitudesApprox(e.node, system_.toComplex(e.w), 0, out);
    }
    return out;
  }

  /// Single amplitude <bits|e>.
  [[nodiscard]] std::complex<double> amplitude(const VEdge& e, std::span<const bool> bits) const {
    assert(bits.size() == nqubits_);
    if constexpr (System::kExact) {
      alg::QOmega acc = system_.value(e.w);
      const VNode* node = e.node;
      for (const bool bit : bits) {
        if (acc.isZero()) {
          return {};
        }
        assert(node != nullptr);
        const VEdge& next = node->e[bit ? 1 : 0];
        acc *= system_.value(next.w);
        node = next.node;
      }
      return acc.toComplex();
    } else {
      std::complex<double> acc = system_.toComplex(e.w);
      const VNode* node = e.node;
      for (const bool bit : bits) {
        if (acc == std::complex<double>{}) {
          return {};
        }
        assert(node != nullptr);
        const VEdge& next = node->e[bit ? 1 : 0];
        acc *= system_.toComplex(next.w);
        node = next.node;
      }
      return acc;
    }
  }

private:
  struct EdgeKey {
    const void* n1;
    Weight w1;
    const void* n2;
    Weight w2;
    friend bool operator==(const EdgeKey&, const EdgeKey&) = default;
  };
  struct EdgeKeyHash {
    std::size_t operator()(const EdgeKey& k) const noexcept {
      std::size_t h = std::hash<const void*>{}(k.n1);
      h = h * 0x9e3779b97f4a7c15ULL + k.w1;
      h = h * 0x9e3779b97f4a7c15ULL + std::hash<const void*>{}(k.n2);
      h = h * 0x9e3779b97f4a7c15ULL + k.w2;
      return h;
    }
  };
  struct NodePairKey {
    const void* n1;
    const void* n2;
    friend bool operator==(const NodePairKey&, const NodePairKey&) = default;
  };
  struct NodePairKeyHash {
    std::size_t operator()(const NodePairKey& k) const noexcept {
      return std::hash<const void*>{}(k.n1) * 0x9e3779b97f4a7c15ULL ^
             std::hash<const void*>{}(k.n2);
    }
  };

  template <std::size_t N> struct UniqueKey {
    Qubit var;
    std::array<const void*, N> nodes;
    std::array<Weight, N> weights;
    friend bool operator==(const UniqueKey&, const UniqueKey&) = default;
  };
  template <std::size_t N> struct UniqueKeyHash {
    std::size_t operator()(const UniqueKey<N>& k) const noexcept {
      std::size_t h = k.var;
      for (std::size_t i = 0; i < N; ++i) {
        h = h * 0x9e3779b97f4a7c15ULL + std::hash<const void*>{}(k.nodes[i]);
        h = h * 0x9e3779b97f4a7c15ULL + k.weights[i];
      }
      return h;
    }
  };

  [[nodiscard]] bool orderForAdd(const VEdge& a, const VEdge& b) const {
    return std::less<const void*>{}(a.node, b.node) || (a.node == b.node && a.w <= b.w);
  }

  [[nodiscard]] VEdge weighted(const VEdge& e, Weight w) {
    if (system_.isZero(e.w) || system_.isZero(w)) {
      return zeroVector();
    }
    return {e.node, system_.mul(w, e.w)};
  }
  [[nodiscard]] MEdge weighted(const MEdge& e, Weight w) {
    if (system_.isZero(e.w) || system_.isZero(w)) {
      return zeroMatrix();
    }
    return {e.node, system_.mul(w, e.w)};
  }
  [[nodiscard]] MEdge scale(const MEdge& e, Weight w) { return weighted(e, w); }

  template <class Edge, class Node, std::size_t N>
  [[nodiscard]] Edge makeNode(
      Qubit var, std::array<Edge, N>& children,
      std::unordered_map<UniqueKey<N>, Node*, UniqueKeyHash<N>>& unique, std::deque<Node>& pool,
      std::vector<Node*>& freeList) {
    assert(var < nqubits_);
    // Zero-weight edges point to the terminal canonically.
    bool allZero = true;
    std::array<Weight, N> weights;
    for (std::size_t i = 0; i < N; ++i) {
      if (system_.isZero(children[i].w)) {
        children[i] = Edge{nullptr, system_.zero()};
        weights[i] = system_.zero();
      } else {
        allZero = false;
        weights[i] = children[i].w;
      }
    }
    if (allZero) {
      return Edge{nullptr, system_.zero()};
    }
    const Weight factor = system_.normalize(std::span<Weight>(weights));
    for (std::size_t i = 0; i < N; ++i) {
      // Under a tolerant numeric system, normalization may snap a weight to
      // zero; keep the zero-edge canonical form (terminal stub).
      if (system_.isZero(weights[i])) {
        children[i] = Edge{nullptr, system_.zero()};
        weights[i] = system_.zero();
      } else {
        children[i].w = weights[i];
      }
    }

    UniqueKey<N> key{var, {}, weights};
    for (std::size_t i = 0; i < N; ++i) {
      key.nodes[i] = children[i].node;
    }
    obs::UniqueTableStats& tableStats =
        std::is_same_v<Node, VNode> ? stats_.vUnique : stats_.mUnique;
    tableStats.lookups.inc();
    if (const auto it = unique.find(key); it != unique.end()) {
      tableStats.hits.inc();
      return Edge{it->second, factor};
    }
    if constexpr (obs::kEnabled) {
      // The insert below will lengthen a chain iff the bucket is occupied.
      if (unique.bucket_count() > 0 && unique.bucket_size(unique.bucket(key)) > 0) {
        tableStats.collisions.inc();
      }
    }
    Node* node = nullptr;
    if (!freeList.empty()) {
      node = freeList.back();
      freeList.pop_back();
      stats_.nodeReuses.inc();
      if constexpr (std::is_same_v<Node, VNode>) {
        --vFreeCount_;
      } else {
        --mFreeCount_;
      }
    } else {
      node = &pool.emplace_back();
      stats_.nodeAllocations.inc();
    }
    node->var = var;
    node->ref = 0;
    node->e = children;
    for (const Edge& child : children) {
      if (child.node != nullptr) {
        ++child.node->ref;
      }
    }
    unique.emplace(std::move(key), node);
    peakNodes_ = std::max(peakNodes_, allocatedNodes());
    return Edge{node, factor};
  }

  template <class Node, std::size_t N>
  void sweep(std::unordered_map<UniqueKey<N>, Node*, UniqueKeyHash<N>>& unique,
             std::vector<Node*>& freeList) {
    // Iteratively remove ref == 0 nodes (freeing one decrements its
    // children, which may become dead in turn).
    bool changed = true;
    while (changed) {
      changed = false;
      for (auto it = unique.begin(); it != unique.end();) {
        Node* node = it->second;
        if (node->ref == 0) {
          for (auto& child : node->e) {
            if (child.node != nullptr) {
              assert(child.node->ref > 0);
              --child.node->ref;
            }
          }
          freeList.push_back(node);
          if constexpr (std::is_same_v<Node, VNode>) {
            ++vFreeCount_;
          } else {
            ++mFreeCount_;
          }
          it = unique.erase(it);
          changed = true;
        } else {
          ++it;
        }
      }
    }
  }

  template <class Node>
  void countNodesImpl(const Node* node, std::unordered_set<const Node*>& visited) const {
    if (node == nullptr || !visited.insert(node).second) {
      return;
    }
    for (const auto& child : node->e) {
      countNodesImpl(child.node, visited);
    }
  }

  /// Bottom-up construction for makeStateFromWeights: the DD over variables
  /// [var, n) representing the amplitude block `amplitudes`.
  [[nodiscard]] VEdge buildStateRange(Qubit var, std::span<const Weight> amplitudes) {
    if (var == nqubits_) {
      assert(amplitudes.size() == 1);
      return VEdge{nullptr, amplitudes[0]};
    }
    const std::size_t half = amplitudes.size() / 2;
    std::array<VEdge, 2> children{buildStateRange(var + 1, amplitudes.subspan(0, half)),
                                  buildStateRange(var + 1, amplitudes.subspan(half))};
    if (system_.isZero(children[0].w) && system_.isZero(children[1].w)) {
      return zeroVector();
    }
    return makeVNode(var, children);
  }

  void amplitudesExact(const VNode* node, const alg::QOmega& acc, std::size_t base,
                       std::vector<std::complex<double>>& out) const {
    if (acc.isZero()) {
      return;
    }
    if (node == nullptr) {
      out[base] = acc.toComplex();
      return;
    }
    const std::size_t stride = std::size_t{1} << (nqubits_ - node->var - 1);
    amplitudesExact(node->e[0].node, acc * system_.value(node->e[0].w), base, out);
    amplitudesExact(node->e[1].node, acc * system_.value(node->e[1].w), base + stride, out);
  }

  void amplitudesApprox(const VNode* node, std::complex<double> acc, std::size_t base,
                        std::vector<std::complex<double>>& out) const {
    if (acc == std::complex<double>{}) {
      return;
    }
    if (node == nullptr) {
      out[base] = acc;
      return;
    }
    const std::size_t stride = std::size_t{1} << (nqubits_ - node->var - 1);
    amplitudesApprox(node->e[0].node, acc * system_.toComplex(node->e[0].w), base, out);
    amplitudesApprox(node->e[1].node, acc * system_.toComplex(node->e[1].w), base + stride, out);
  }

  Qubit nqubits_;
  System system_;
  obs::PackageStats stats_;

  std::deque<VNode> vPool_;
  std::deque<MNode> mPool_;
  std::vector<VNode*> vFree_;
  std::vector<MNode*> mFree_;
  std::size_t vFreeCount_ = 0;
  std::size_t mFreeCount_ = 0;
  std::size_t peakNodes_ = 0;

  std::unordered_map<UniqueKey<2>, VNode*, UniqueKeyHash<2>> vUnique_;
  std::unordered_map<UniqueKey<4>, MNode*, UniqueKeyHash<4>> mUnique_;

  std::unordered_map<EdgeKey, VEdge, EdgeKeyHash> vAddCache_;
  std::unordered_map<EdgeKey, MEdge, EdgeKeyHash> mAddCache_;
  std::unordered_map<NodePairKey, VEdge, NodePairKeyHash> mvCache_;
  std::unordered_map<NodePairKey, MEdge, NodePairKeyHash> mmCache_;
  std::unordered_map<NodePairKey, VEdge, NodePairKeyHash> vKronCache_;
  std::unordered_map<NodePairKey, MEdge, NodePairKeyHash> mKronCache_;
  std::unordered_map<const MNode*, MEdge> transposeCache_;
  std::unordered_map<NodePairKey, Weight, NodePairKeyHash> innerCache_;
  std::unordered_map<const MNode*, Weight> traceCache_;
};

} // namespace qadd::dd
