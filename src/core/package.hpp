/// \file package.hpp
/// The QMDD package: weighted decision diagrams for quantum state vectors
/// (2 successors per node) and unitary matrices (4 successors per node),
/// templated over the weight system (NumericSystem or AlgebraicSystem).
///
/// Follows the QMDD construction of [15]/Section II-B: nodes are normalized
/// (the normalization policy lives in the weight system), stored in unique
/// tables for canonicity, and manipulated through cached recursive algorithms
/// (addition, matrix-vector / matrix-matrix multiplication, Kronecker
/// product, conjugate transpose, inner product).  Vector diagrams are
/// quasi-reduced: every root-to-terminal path visits every variable.  Matrix
/// diagrams use *skip-level edges* (see core/dd_node.hpp and
/// docs/CORE_STORAGE.md): an edge entering above its node's variable denotes
/// an implicit identity on the skipped levels, so a single-qubit gate on an
/// n-qubit register is one node instead of an O(n) identity tower and the
/// multiply recursion touches only the active levels.  makeNode collapses
/// the diag(c, 0, 0, c) pattern unconditionally (Config::skipIdentities,
/// default on), which makes the skip form canonical: an explicit identity
/// level can never coexist with its skipped representation.
///
/// Storage architecture (see docs/CORE_STORAGE.md):
///  - nodes live in chunked arenas (core/memory_manager.hpp) with stable
///    addresses and intrusive free-list reuse;
///  - canonicity is enforced by bucket-chained unique tables over node
///    contents (core/unique_table.hpp), chained through Node::next;
///  - the operation caches are fixed-size, direct-mapped, lossy
///    (core/computed_table.hpp); clearing them — on garbageCollect() or
///    clearCaches() — is an O(1) epoch bump per table;
///  - both node arities share one set of templated algorithms via the
///    Edge/Node templates of core/dd_node.hpp.
///
/// Reference counting: a node holds one reference per parent edge plus any
/// external references (incRef/decRef).  garbageCollect() invalidates the
/// operation caches and sweeps ref == 0 nodes; it also auto-triggers from
/// decRef() when the live node count crosses the configured watermark
/// (System::Config::gcWatermark, 0 = only on demand).
///
/// Intra-operation parallelism (see docs/PARALLELISM.md): setExecutor()
/// attaches an exec::ThreadPool and — when the weight system's memoization
/// is order-independent (algebraic, or numeric in exact mode) — switches the
/// package into concurrent mode: add/multiply/kronecker fork their child
/// subproblems onto the pool down to a depth cutoff (Config::parallelDepth;
/// 0 derives ceil(log2(workers)) + 2), the unique tables take stripe locks
/// around find-or-insert, the operation caches publish entries through
/// per-slot seqlocks, and the arenas hand out per-worker spans.  With no
/// executor (or a 1-worker pool, or an order-dependent system) every one of
/// those paths collapses to the exact pre-concurrency serial code.
#pragma once

#include "algebraic/qomega.hpp" // exact amplitude accumulation (algebraic system)
#include "core/computed_table.hpp"
#include "core/dd_node.hpp"
#include "core/memory_manager.hpp"
#include "core/unique_table.hpp"
#include "exec/thread_pool.hpp"
#include "obs/stats.hpp"
#include "obs/timeline.hpp"
#include "obs/tracer.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cassert>
#include <chrono>
#include <cmath>
#include <complex>
#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <unordered_map>
#include <vector>

namespace qadd::dd {

/// Result of one garbage-collection run.
struct GcReport {
  std::size_t swept = 0;      ///< nodes returned to the free lists
  std::size_t liveBefore = 0; ///< allocated nodes before the sweep
  std::size_t liveAfter = 0;  ///< allocated nodes after the sweep
  double seconds = 0.0;       ///< wall time of cache invalidation + sweeping
};

/// Bitmask selecting operation caches for Package::clearCaches().
enum class CacheKind : std::uint16_t {
  VAdd = 1U << 0,
  MAdd = 1U << 1,
  MV = 1U << 2,
  MM = 1U << 3,
  VKron = 1U << 4,
  MKron = 1U << 5,
  Transpose = 1U << 6,
  Inner = 1U << 7,
  Trace = 1U << 8,
  All = (1U << 9) - 1,
};

[[nodiscard]] constexpr CacheKind operator|(CacheKind a, CacheKind b) {
  return static_cast<CacheKind>(static_cast<std::uint16_t>(a) | static_cast<std::uint16_t>(b));
}
[[nodiscard]] constexpr bool contains(CacheKind mask, CacheKind kind) {
  return (static_cast<std::uint16_t>(mask) & static_cast<std::uint16_t>(kind)) != 0;
}

template <class System> class Package {
public:
  using Weight = typename System::Weight;
  static_assert(std::is_integral_v<Weight>,
                "Package requires interned integral weight handles (both weight systems "
                "intern to std::uint32_t refs)");

  using VNode = dd::Node<Weight, 2>;
  using MNode = dd::Node<Weight, 4>;
  /// Weighted edge into a vector DD.  node == nullptr means the edge goes to
  /// the terminal.
  using VEdge = dd::Edge<VNode, Weight>;
  /// Weighted edge into a matrix DD.
  using MEdge = dd::Edge<MNode, Weight>;

  /// 2x2 gate matrix given as weights [u00, u01, u10, u11].
  using GateMatrix = std::array<Weight, 4>;

  // Operation-cache geometry: the add and multiply caches carry the
  // simulation hot path and get the large tables; Kronecker/inner/unary
  // traffic is lighter.  All lossy and direct-mapped; sizes are powers of 2.
  static constexpr std::size_t kAddCacheEntries = std::size_t{1} << 16U;
  static constexpr std::size_t kMulCacheEntries = std::size_t{1} << 16U;
  static constexpr std::size_t kKronCacheEntries = std::size_t{1} << 13U;
  static constexpr std::size_t kInnerCacheEntries = std::size_t{1} << 13U;
  static constexpr std::size_t kUnaryCacheEntries = std::size_t{1} << 12U;

  explicit Package(Qubit nqubits, typename System::Config config = {})
      : nqubits_(nqubits), system_(config), gcWatermark_(config.gcWatermark),
        configParallelDepth_(config.parallelDepth), skipIdentities_(config.skipIdentities) {
    if (system_.memoizationOrderDependent()) {
      // A recomputed result could differ from the cached one (tolerance-mode
      // interning): keep every memoized result so nothing is ever recomputed.
      for (const CacheRegistryEntry& entry : kCacheRegistry) {
        entry.setLossless(*this, true);
      }
    }
  }

  Package(const Package&) = delete;
  Package& operator=(const Package&) = delete;

  [[nodiscard]] Qubit qubits() const { return nqubits_; }
  [[nodiscard]] System& system() { return system_; }
  [[nodiscard]] const System& system() const { return system_; }

  // -- intra-operation parallelism ----------------------------------------------

  /// Attach (or detach, with nullptr) the thread pool the DD kernels fork
  /// onto.  Concurrent mode engages only when the pool has more than one
  /// worker AND the weight system's memoization is order-independent —
  /// tolerance-mode numeric interning stays serial so its lossless-cache
  /// determinism contract is untouched.  Quiescent-point only (never while a
  /// kernel is running); a package binds to at most one pool at a time.
  void setExecutor(exec::ThreadPool* pool) {
    assert(activeKernels_ == 0 && "setExecutor during a running kernel");
    executor_ = pool;
    const std::size_t workers = pool != nullptr ? pool->workers() : 0;
    const bool wantConcurrent = workers > 1 && !system_.memoizationOrderDependent();
    if (wantConcurrent == concurrent_ && !wantConcurrent) {
      return;
    }
    concurrent_ = wantConcurrent;
    if (concurrent_) {
      parallelDepth_ = configParallelDepth_ != 0
                           ? configParallelDepth_
                           : static_cast<std::size_t>(std::bit_width(workers - 1)) + 2;
    } else {
      parallelDepth_ = 0;
    }
    vUnique_.setConcurrent(concurrent_);
    mUnique_.setConcurrent(concurrent_);
    if (concurrent_) {
      vMem_.setConcurrent(workers);
      mMem_.setConcurrent(workers);
    }
    for (const CacheRegistryEntry& entry : kCacheRegistry) {
      entry.setConcurrent(*this, concurrent_);
    }
    system_.setConcurrent(concurrent_);
  }
  [[nodiscard]] exec::ThreadPool* executor() const { return executor_; }
  /// True iff the kernels currently run the forked, striped, seqlocked paths.
  [[nodiscard]] bool concurrentKernels() const { return concurrent_; }
  /// *Effective* recursion depth down to which kernels fork (0 in serial
  /// mode).  The budget decrements once per recursion step, and with
  /// skip-level edges a step descends to the next *materialized* level of
  /// the operands — identity levels skipped by an edge cost no budget (and
  /// spawn no tasks), so the cutoff compares against the remaining
  /// materialized depth, not the raw qubit count.  See Config::parallelDepth.
  [[nodiscard]] std::size_t parallelDepth() const { return parallelDepth_; }
  /// True iff identity levels are kept implicit (skip-level matrix edges,
  /// Config::skipIdentities).  False reproduces the legacy fully-materialized
  /// representation (identity towers) — the before-side of bench/gate_apply.
  [[nodiscard]] bool skipIdentities() const { return skipIdentities_; }

  // -- canonical edges ---------------------------------------------------------

  [[nodiscard]] VEdge zeroVector() const { return {nullptr, system_.zero()}; }
  [[nodiscard]] MEdge zeroMatrix() const { return {nullptr, system_.zero()}; }

  // -- node construction (normalizing + unique table) ---------------------------

  /// Create/lookup the canonical vector node; normalizes the children weights
  /// and folds the extracted factor into the returned edge weight.
  [[nodiscard]] VEdge makeVNode(Qubit var, std::array<VEdge, 2> children) {
    return makeNode<VEdge, 2>(var, children);
  }

  /// Create/lookup the canonical matrix node (children in the paper's order:
  /// top-left, top-right, bottom-left, bottom-right).
  [[nodiscard]] MEdge makeMNode(Qubit var, std::array<MEdge, 4> children) {
    return makeNode<MEdge, 4>(var, children);
  }

  // -- reference counting / garbage collection ---------------------------------

  void incRef(const VEdge& e) {
    if (e.node != nullptr) {
      ++e.node->ref;
    }
  }
  void incRef(const MEdge& e) {
    if (e.node != nullptr) {
      ++e.node->ref;
    }
  }
  /// Release an external reference.  May auto-trigger garbageCollect() when
  /// the live node count exceeds the watermark — callers must hold an incRef
  /// on every edge they still need across a decRef (the discipline the
  /// simulator and unitary builders already follow).
  void decRef(const VEdge& e) {
    if (e.node != nullptr) {
      assert(e.node->ref > 0);
      --e.node->ref;
      maybeGarbageCollect();
    }
  }
  void decRef(const MEdge& e) {
    if (e.node != nullptr) {
      assert(e.node->ref > 0);
      --e.node->ref;
      maybeGarbageCollect();
    }
  }

  /// Invalidate all operation caches and free every node that is no longer
  /// reachable from an externally referenced edge.
  GcReport garbageCollect() {
    // GC is a stop-the-world quiescent-point operation: it is only ever
    // entered from decRef/explicit calls outside the kernels, never while a
    // fork-join recursion holds nodes that carry no ref count yet.
    assert(activeKernels_ == 0 && "garbageCollect during a running kernel");
    const auto span = obs::Tracer::global().span("gc", "dd");
    const auto start = std::chrono::steady_clock::now();
    GcReport report;
    report.liveBefore = allocatedNodes();
    clearCaches(); // O(1) epoch bumps — GC no longer pays a cache teardown
    vUnique_.sweep([this](VNode* node) { vMem_.free(node); });
    mUnique_.sweep([this](MNode* node) { mMem_.free(node); });
    report.liveAfter = allocatedNodes();
    report.swept = report.liveBefore - report.liveAfter;
    report.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    ++gcRuns_;
    lastGcReport_ = report;
    stats_.gc.runs.inc();
    stats_.gc.nodesSwept.inc(report.swept);
    if constexpr (obs::kEnabled) {
      stats_.gc.seconds += report.seconds;
    }
    return report;
  }

  /// Run garbageCollect() iff the live node count exceeds the watermark.
  /// Returns true when a collection ran.
  bool maybeGarbageCollect() {
    if (gcWatermark_ != 0 && allocatedNodes() > gcWatermark_) {
      garbageCollect();
      return true;
    }
    return false;
  }

  /// Watermark for auto-GC (0 disables); initialized from
  /// System::Config::gcWatermark.
  void setGcWatermark(std::size_t watermark) { gcWatermark_ = watermark; }
  [[nodiscard]] std::size_t gcWatermark() const { return gcWatermark_; }
  /// Collections run so far (manual + auto); always maintained, even with
  /// telemetry compiled out.
  [[nodiscard]] std::size_t gcRuns() const { return gcRuns_; }
  /// Report of the most recent collection (all zeros before the first run).
  [[nodiscard]] const GcReport& lastGcReport() const { return lastGcReport_; }

  /// Invalidate the selected operation caches (all of them by default),
  /// driven by the static cache registry — each entry is an O(1) epoch bump.
  void clearCaches(CacheKind kinds = CacheKind::All) {
    for (const CacheRegistryEntry& entry : kCacheRegistry) {
      if (contains(kinds, entry.kind)) {
        entry.clear(*this);
      }
    }
  }

  /// Number of live (allocated, not freed) nodes across both node types.
  [[nodiscard]] std::size_t allocatedNodes() const { return vMem_.inUse() + mMem_.inUse(); }
  [[nodiscard]] std::size_t peakNodes() const { return peakNodes_; }
  /// Node-arena capacity in bytes across both pools (O(1)).
  [[nodiscard]] std::size_t arenaBytes() const { return vMem_.arenaBytes() + mMem_.arenaBytes(); }

  // -- telemetry ----------------------------------------------------------------

  /// Raw counter block (no gauges filled); cheap, suitable for sampling in
  /// tight loops.
  [[nodiscard]] const obs::PackageStats& counters() const { return stats_; }

  /// Snapshot of all counters plus the gauges: live/peak node counts, the
  /// unique-table fill (entries/buckets), and the weight-table view of the
  /// active system (entry count, ε near-misses and bucket occupancy for the
  /// numeric table; bit-width histogram for the algebraic intern pool).
  [[nodiscard]] obs::PackageStats stats() const {
    obs::PackageStats snapshot = stats_;
    snapshot.liveNodes = allocatedNodes();
    snapshot.peakNodes = peakNodes_;
    snapshot.arenaBytes = arenaBytes();
    snapshot.vUnique.entries = vUnique_.size();
    snapshot.vUnique.buckets = vUnique_.bucketCount();
    snapshot.mUnique.entries = mUnique_.size();
    snapshot.mUnique.buckets = mUnique_.bucketCount();
    system_.collectObs(snapshot.weights);
    return snapshot;
  }

  /// Fill the gauge fields of a timeline sample from this package — every
  /// read is O(1) (no DD traversals, no histogram walks), so this is cheap
  /// enough to run after every gate.  The caller sets the context fields
  /// (series, kind, gateIndex, epsilon); record() stamps tid and seconds.
  void sampleTimeline(obs::Timeline::Sample& sample) const {
    sample.liveNodes = allocatedNodes();
    sample.peakNodes = peakNodes_;
    sample.arenaBytes = arenaBytes();
    sample.uniqueEntries = vUnique_.size() + mUnique_.size();
    sample.uniqueBuckets = vUnique_.bucketCount() + mUnique_.bucketCount();
    sample.uniqueCollisions =
        stats_.vUnique.collisions.value() + stats_.mUnique.collisions.value();
    sample.cacheHitRate = stats_.combinedCacheHitRate();
    sample.gcRuns = gcRuns_;
    sample.smallPathHits = system_.smallPathHits();
    sample.smallPathSpills = system_.smallPathSpills();
    sample.weightEntries = system_.distinctValues();
    sample.prunedNodes = stats_.approx.nodesRemoved.value();
  }

  /// Zero all counters (gauges are derived, so they are unaffected).
  void resetStats() { stats_ = {}; }

  /// Mutable snapshot-I/O counter block, maintained by the qadd::io layer
  /// (save/load volume, load dedup); part of stats()/counters() snapshots.
  [[nodiscard]] obs::IoStats& ioCounters() { return stats_.io; }

  // -- builders -----------------------------------------------------------------

  /// |b_0 b_1 ... b_{n-1}> with b_0 the top qubit.
  [[nodiscard]] VEdge makeBasisState(std::span<const bool> bits) {
    assert(bits.size() == nqubits_);
    VEdge e{nullptr, system_.one()};
    for (Qubit var = nqubits_; var-- > 0;) {
      if (bits[var]) {
        e = makeVNode(var, {zeroVector(), e});
      } else {
        e = makeVNode(var, {e, zeroVector()});
      }
    }
    return e;
  }

  /// |00...0>.
  [[nodiscard]] VEdge makeZeroState() {
    VEdge e{nullptr, system_.one()};
    for (Qubit var = nqubits_; var-- > 0;) {
      e = makeVNode(var, {e, zeroVector()});
    }
    return e;
  }

  /// Identity on all qubits.  With skip-level edges this is the canonical
  /// terminal edge {nullptr, 1, 0} — identity on every level of the context
  /// — built in O(1); the legacy representation materializes the O(n) tower
  /// (which makeNode would otherwise collapse right back).
  [[nodiscard]] MEdge makeIdentity() {
    MEdge e{nullptr, system_.one()};
    if (skipIdentities_) {
      return e;
    }
    for (Qubit var = nqubits_; var-- > 0;) {
      e = makeMNode(var, {e, zeroMatrix(), zeroMatrix(), e});
    }
    return e;
  }

  /// Build the DD of an arbitrary state vector given its 2^n amplitudes as
  /// weights (index 0 = |0...0>, qubit 0 is the most significant bit).
  /// Performs the usual bottom-up construction with normalization, so equal
  /// (sub-)vectors share nodes.  \pre amplitudes.size() == 2^qubits()
  [[nodiscard]] VEdge makeStateFromWeights(std::span<const Weight> amplitudes) {
    assert(amplitudes.size() == (std::size_t{1} << nqubits_));
    return buildStateRange(0, amplitudes);
  }

  /// Control polarity for controlled gates.
  enum class Control : std::uint8_t { Positive, Negative };

  /// DD of the n-qubit unitary applying `u` to `target`, conditioned on the
  /// given controls; identity on every other qubit.  Built as
  /// I + P_controls (x) (U - I), which handles arbitrary control sets.
  [[nodiscard]] MEdge makeGate(const GateMatrix& u, Qubit target,
                               std::span<const std::pair<Qubit, Control>> controls = {}) {
    assert(target < nqubits_);
    if (controls.empty()) {
      // One node at the target level; the identity above and below stays
      // implicit (the below-identity is the terminal children, the
      // above-identity is the root edge's skip span).  The legacy path
      // materializes the identity tower level by level instead.
      MEdge e{nullptr, system_.one()};
      if (skipIdentities_) {
        e = makeMNode(target, {scale(e, u[0]), scale(e, u[1]), scale(e, u[2]), scale(e, u[3])});
        return enteringAt(e, 0);
      }
      for (Qubit var = nqubits_; var-- > 0;) {
        if (var == target) {
          e = makeMNode(var, {scale(e, u[0]), scale(e, u[1]), scale(e, u[2]), scale(e, u[3])});
        } else {
          e = makeMNode(var, {e, zeroMatrix(), zeroMatrix(), e});
        }
      }
      return e;
    }
    // Controlled: G = I + C where C applies (U - I) on the target restricted
    // to the subspace selected by the controls.  C acts as the identity on
    // every level that is neither the target nor a control, so with
    // skip-level edges only the active levels materialize a node — the cost
    // is O(active qubits), independent of the register width and of the
    // gaps between the active qubits.
    const GateMatrix uMinusI{system_.sub(u[0], system_.one()), u[1], u[2],
                             system_.sub(u[3], system_.one())};
    MEdge c{nullptr, system_.one()};
    for (Qubit var = nqubits_; var-- > 0;) {
      bool isControl = false;
      Control polarity = Control::Positive;
      for (const auto& [q, pol] : controls) {
        assert(q < nqubits_ && q != target);
        if (q == var) {
          isControl = true;
          polarity = pol;
          break;
        }
      }
      if (var == target) {
        c = makeMNode(var, {scale(c, uMinusI[0]), scale(c, uMinusI[1]), scale(c, uMinusI[2]),
                            scale(c, uMinusI[3])});
      } else if (isControl) {
        if (polarity == Control::Positive) {
          c = makeMNode(var, {zeroMatrix(), zeroMatrix(), zeroMatrix(), c});
        } else {
          c = makeMNode(var, {c, zeroMatrix(), zeroMatrix(), zeroMatrix()});
        }
      } else if (!skipIdentities_) {
        c = makeMNode(var, {c, zeroMatrix(), zeroMatrix(), c});
      }
      // else: inactive level — the identity stays implicit in the edge.
    }
    return add(makeIdentity(), enteringAt(c, 0));
  }

  // -- arithmetic ---------------------------------------------------------------

  [[nodiscard]] VEdge add(const VEdge& a, const VEdge& b) {
    const KernelScope scope(*this);
    return addImpl(a, b, parallelDepth_);
  }
  [[nodiscard]] MEdge add(const MEdge& a, const MEdge& b) {
    const KernelScope scope(*this);
    return addImpl(a, b, parallelDepth_);
  }

  /// Matrix-vector product M|v>.
  [[nodiscard]] VEdge multiply(const MEdge& m, const VEdge& v) {
    const KernelScope scope(*this);
    return multiplyImpl(m, v, parallelDepth_);
  }
  /// Matrix-matrix product A*B.
  [[nodiscard]] MEdge multiply(const MEdge& a, const MEdge& b) {
    const KernelScope scope(*this);
    return multiplyImpl(a, b, parallelDepth_);
  }

  /// |top> (x) |bottom>; top's variables must all lie above bottom's.
  [[nodiscard]] VEdge kronecker(const VEdge& top, const VEdge& bottom) {
    const KernelScope scope(*this);
    return kroneckerImpl(top, bottom, parallelDepth_);
  }
  /// A (x) B for matrices; same variable discipline as the vector overload.
  [[nodiscard]] MEdge kronecker(const MEdge& top, const MEdge& bottom) {
    const KernelScope scope(*this);
    return kroneckerImpl(top, bottom, parallelDepth_);
  }

  /// Conjugate transpose (adjoint) of a matrix DD.  Skip spans transpose to
  /// themselves (identity is self-adjoint), so the result re-enters at the
  /// input's level; the cache stores the node-level adjoint.
  [[nodiscard]] MEdge conjugateTranspose(const MEdge& a) {
    if (system_.isZero(a.w)) {
      return zeroMatrix();
    }
    const Weight w = system_.conj(a.w);
    if (a.isTerminal()) {
      return {nullptr, w};
    }
    const NodeKey key{a.node};
    MEdge hit;
    if (transposeCache_.lookup(key, hit)) {
      stats_.transpose.hits.inc();
      return enteringAt(weighted(hit, w), a.var);
    }
    stats_.transpose.misses.inc();
    std::array<MEdge, 4> children{
        conjugateTranspose(a.node->e[0]), conjugateTranspose(a.node->e[2]),
        conjugateTranspose(a.node->e[1]), conjugateTranspose(a.node->e[3])};
    const MEdge result = makeMNode(a.node->var, children);
    if (transposeCache_.insert(key, result)) {
      stats_.transpose.evictions.inc();
    }
    return enteringAt(weighted(result, w), a.var);
  }

  /// True iff the two matrix DDs represent the same unitary up to a global
  /// phase: canonical diagrams make this a root comparison plus one
  /// magnitude check on the root-weight ratio.  (Useful when comparing
  /// against Solovay-Kitaev output, which is projective.)
  [[nodiscard]] bool equalUpToGlobalPhase(const MEdge& a, const MEdge& b) {
    if (a.node != b.node || a.var != b.var) {
      // Same node entered at different levels = different identity padding:
      // different operators, phase notwithstanding.
      return false;
    }
    if (a.w == b.w) {
      return true;
    }
    if (system_.isZero(a.w) || system_.isZero(b.w)) {
      return false;
    }
    // ratio = a.w / b.w must have |ratio| == 1.
    const Weight ratio = system_.div(a.w, b.w);
    const Weight magnitude = system_.mul(ratio, system_.conj(ratio));
    return system_.isOne(magnitude);
  }

  /// Fidelity |<a|b>|^2 as a double (exact up to the final conversion for
  /// the algebraic system).
  [[nodiscard]] double fidelity(const VEdge& a, const VEdge& b) {
    const auto overlap = system_.toComplex(innerProduct(a, b));
    return std::norm(overlap);
  }

  /// Expectation value <psi| M |psi> as a weight.
  [[nodiscard]] Weight expectationValue(const MEdge& observable, const VEdge& state) {
    const VEdge applied = multiply(observable, state);
    return innerProduct(state, applied);
  }

  /// Matrix trace tr(A) as a weight (sum of the 2^n diagonal entries,
  /// computed in O(|DD|) with memoization).
  [[nodiscard]] Weight trace(const MEdge& a) { return traceImpl(a, 0); }

  /// Process fidelity |tr(A^dagger B)| / 2^n — the standard "equal up to
  /// global phase" metric of DD-based equivalence checkers.  1.0 iff the
  /// unitaries coincide up to phase.
  [[nodiscard]] double processFidelity(const MEdge& a, const MEdge& b) {
    const auto overlap = multiply(conjugateTranspose(a), b);
    const auto traced = system_.toComplex(trace(overlap));
    return std::abs(traced) / std::ldexp(1.0, static_cast<int>(nqubits_));
  }

  /// <a|b> (conjugate-linear in a).
  [[nodiscard]] Weight innerProduct(const VEdge& a, const VEdge& b) {
    if (system_.isZero(a.w) || system_.isZero(b.w)) {
      return system_.zero();
    }
    const Weight w = system_.mul(system_.conj(a.w), b.w);
    if (a.isTerminal() && b.isTerminal()) {
      return w;
    }
    assert(!a.isTerminal() && !b.isTerminal() && a.node->var == b.node->var);
    const NodePairKey key{a.node, b.node};
    Weight hit;
    if (innerCache_.lookup(key, hit)) {
      stats_.inner.hits.inc();
      return system_.mul(w, hit);
    }
    stats_.inner.misses.inc();
    Weight sum = system_.zero();
    for (std::size_t i = 0; i < 2; ++i) {
      sum = system_.add(sum, innerProduct(a.node->e[i], b.node->e[i]));
    }
    if (innerCache_.insert(key, sum)) {
      stats_.inner.evictions.inc();
    }
    return system_.mul(w, sum);
  }

  // -- approximation (fidelity-bounded pruning, arXiv 2002.04904) ---------------

  /// Outcome of one prune() run.  When nothing was pruned (budget too small
  /// for even the lightest subtree, zero/terminal input, or pruning would
  /// have removed all remaining mass) `edge` is the input edge unchanged —
  /// same node pointer, same weight — and achievedFidelity stays 1.
  struct PruneResult {
    VEdge edge;                    ///< pruned + renormalized state (or the input)
    double achievedFidelity = 1.0; ///< |<pruned|input>|^2, measured in raw doubles
    double budgetSpent = 0.0;      ///< contribution mass of the removed edges
    std::size_t edgesPruned = 0;   ///< child edges redirected to the zero vector
    std::size_t nodesBefore = 0;   ///< countNodes(input)
    std::size_t nodesAfter = 0;    ///< countNodes(edge)
  };

  /// Remove the lowest-contribution subtrees of a state DD until the removed
  /// |amplitude|^2 mass would exceed `fidelityBudget`, then renormalize.
  ///
  /// The contribution of edge (v, i) is the total squared amplitude mass the
  /// state routes through it: in(v) * |w_i|^2 * norm2(child_i), where norm2
  /// is the squared subtree norm (one upward pass) and in(v) is the squared
  /// product of edge weights over all root-to-v paths (one downward pass in
  /// variable order, seeded with |w_root|^2).  Contributions across any cut
  /// sum to the squared state norm, so greedily removing edges while the
  /// running sum stays <= budget guarantees fidelity >= 1 - budget against
  /// the input state (for a normalized input).  Ties are broken by a DFS
  /// preorder ordinal of the owning node — a structural order, so the result
  /// is identical no matter how many worker threads built the diagram.
  ///
  /// The surviving diagram is rebuilt bottom-up through makeVNode (pruned
  /// edges become the zero vector), which keeps it canonical: snapshots of a
  /// pruned state round-trip byte-identically.  Numeric systems only — the
  /// algebraic system is exact by contract and throws std::logic_error.
  [[nodiscard]] PruneResult prune(const VEdge& root, double fidelityBudget) {
    if constexpr (System::kExact) {
      (void)root;
      (void)fidelityBudget;
      throw std::logic_error("Package::prune: the algebraic system is exact; "
                             "fidelity-bounded approximation is numeric-only");
    } else {
      PruneResult result;
      result.edge = root;
      result.nodesBefore = countNodes(root);
      result.nodesAfter = result.nodesBefore;
      if (fidelityBudget <= 0.0 || root.isTerminal() || system_.isZero(root.w)) {
        return result;
      }

      const auto weightNorm2 = [this](Weight w) { return std::norm(system_.toComplex(w)); };

      // Upward pass: squared subtree norms, plus a DFS preorder ordinal per
      // node (the deterministic tie-break; Node::seq is allocation-order and
      // therefore scheduling-dependent under the parallel kernels).
      std::unordered_map<const VNode*, double> norm2;
      std::unordered_map<const VNode*, std::size_t> ordinal;
      std::vector<const VNode*> preorder;
      const std::function<double(const VNode*)> subtreeNorm2 =
          [&](const VNode* node) -> double {
        if (node == nullptr) {
          return 1.0; // terminal
        }
        if (const auto it = norm2.find(node); it != norm2.end()) {
          return it->second;
        }
        ordinal.emplace(node, preorder.size());
        preorder.push_back(node);
        double sum = 0.0;
        for (const VEdge& child : node->e) {
          if (!system_.isZero(child.w)) {
            sum += weightNorm2(child.w) * subtreeNorm2(child.node);
          }
        }
        norm2.emplace(node, sum);
        return sum;
      };
      subtreeNorm2(root.node);

      // Downward pass in variable order (vector DDs are quasi-reduced, so
      // var-ascending is topological): accumulate the in-mass of every node
      // and emit one candidate per non-zero child edge.
      std::vector<const VNode*> topo = preorder;
      std::stable_sort(topo.begin(), topo.end(),
                       [](const VNode* a, const VNode* b) { return a->var < b->var; });
      struct Candidate {
        double contribution;
        std::size_t ordinal;
        std::size_t slot;
        const VNode* node;
      };
      std::unordered_map<const VNode*, double> inMass;
      inMass.reserve(topo.size());
      inMass.emplace(root.node, weightNorm2(root.w));
      std::vector<Candidate> candidates;
      candidates.reserve(2 * topo.size());
      for (const VNode* node : topo) {
        const double in = inMass[node];
        for (std::size_t slot = 0; slot < 2; ++slot) {
          const VEdge& child = node->e[slot];
          if (system_.isZero(child.w)) {
            continue;
          }
          const double share = in * weightNorm2(child.w);
          const double childNorm2 = child.isTerminal() ? 1.0 : norm2[child.node];
          candidates.push_back({share * childNorm2, ordinal[node], slot, node});
          if (!child.isTerminal()) {
            inMass[child.node] += share;
          }
        }
      }

      // Greedy selection, cheapest contributions first.  Candidates ascend,
      // so the first one that no longer fits ends the scan.  Overlap (an
      // edge inside an already-selected subtree) only double-counts spent
      // mass, which errs on the conservative side of the fidelity bound.
      std::sort(candidates.begin(), candidates.end(),
                [](const Candidate& a, const Candidate& b) {
                  if (a.contribution != b.contribution) {
                    return a.contribution < b.contribution;
                  }
                  if (a.ordinal != b.ordinal) {
                    return a.ordinal < b.ordinal;
                  }
                  return a.slot < b.slot;
                });
      double spent = 0.0;
      std::unordered_map<const VNode*, unsigned> prunedSlots;
      std::size_t edgesPruned = 0;
      for (const Candidate& candidate : candidates) {
        if (candidate.contribution > fidelityBudget - spent) {
          break;
        }
        spent += candidate.contribution;
        prunedSlots[candidate.node] |= 1U << candidate.slot;
        ++edgesPruned;
      }
      if (edgesPruned == 0) {
        return result;
      }

      // Rebuild the surviving diagram bottom-up through makeVNode, memoized
      // per original node, so the pruned state is canonical like any other.
      // The peak-node gauge samples once when the guard leaves scope: inUse
      // is not monotone during the rebuild (normalization dedup returns
      // fresh nodes to the free list), so per-insert samples would give the
      // serial gauge finer resolution than the concurrent one and break the
      // serial-vs-parallel byte-identity of the peaknodes column.
      struct PeakGuard {
        Package& pkg;
        explicit PeakGuard(Package& p) : pkg(p) { pkg.peakSampleSuppressed_ = true; }
        ~PeakGuard() {
          pkg.peakSampleSuppressed_ = false;
          pkg.peakNodes_ = std::max(pkg.peakNodes_, pkg.allocatedNodes());
        }
      } peakGuard{*this};
      const auto isZeroEdge = [this](const VEdge& e) {
        return e.node == nullptr && system_.isZero(e.w);
      };
      std::unordered_map<const VNode*, VEdge> rebuiltCache;
      const std::function<VEdge(const VNode*)> rebuild = [&](const VNode* node) -> VEdge {
        if (const auto it = rebuiltCache.find(node); it != rebuiltCache.end()) {
          return it->second;
        }
        unsigned mask = 0;
        if (const auto it = prunedSlots.find(node); it != prunedSlots.end()) {
          mask = it->second;
        }
        std::array<VEdge, 2> children;
        for (std::size_t slot = 0; slot < 2; ++slot) {
          const VEdge& child = node->e[slot];
          if (((mask >> slot) & 1U) != 0 || system_.isZero(child.w)) {
            children[slot] = zeroVector();
          } else if (child.isTerminal()) {
            children[slot] = child;
          } else {
            const VEdge sub = rebuild(child.node);
            children[slot] = {sub.node, system_.mul(child.w, sub.w), sub.var};
          }
        }
        const VEdge replacement = isZeroEdge(children[0]) && isZeroEdge(children[1])
                                      ? zeroVector()
                                      : makeVNode(node->var, children);
        rebuiltCache.emplace(node, replacement);
        return replacement;
      };
      const VEdge rebuiltRoot = rebuild(root.node);
      VEdge pruned{rebuiltRoot.node, system_.mul(root.w, rebuiltRoot.w), rebuiltRoot.var};
      if (isZeroEdge(pruned)) {
        return result; // budget covered the whole state — nothing to renormalize
      }

      // Measure the remaining mass and the overlap with the input in raw
      // double arithmetic, NOT through innerProduct: under an ε-unified
      // weight system every mul/add result snaps to a table entry within ε,
      // which distorts exactly the O(budget)-sized quantities measured here
      // and (observed on Grover at ε = 1e-5) doubles the reported loss.
      std::unordered_map<const VNode*, double> rawNorm2;
      const std::function<double(const VNode*)> rawSubtreeNorm2 =
          [&](const VNode* node) -> double {
        if (node == nullptr) {
          return 1.0;
        }
        if (const auto it = rawNorm2.find(node); it != rawNorm2.end()) {
          return it->second;
        }
        double sum = 0.0;
        for (const VEdge& child : node->e) {
          if (!system_.isZero(child.w)) {
            sum += weightNorm2(child.w) * rawSubtreeNorm2(child.node);
          }
        }
        rawNorm2.emplace(node, sum);
        return sum;
      };
      const double remaining = weightNorm2(pruned.w) * rawSubtreeNorm2(pruned.node);
      if (!(remaining > 0.0)) {
        return result;
      }
      using Float = typename System::Float;
      const auto rootValue = system_.valueOf(pruned.w);
      const Float scale =
          static_cast<Float>(1) / static_cast<Float>(std::sqrt(remaining));
      pruned.w = system_.fromValue({rootValue.re * scale, rootValue.im * scale});

      // Raw-double overlap <pruned|root>, memoized over node pairs (lockstep
      // recursion is valid: both diagrams are quasi-reduced over the same
      // variables).
      std::map<std::pair<const VNode*, const VNode*>, std::complex<double>> overlapCache;
      const std::function<std::complex<double>(const VNode*, const VNode*)> nodeOverlap =
          [&](const VNode* a, const VNode* b) -> std::complex<double> {
        if (a == nullptr || b == nullptr) {
          return 1.0;
        }
        const auto key = std::make_pair(a, b);
        if (const auto it = overlapCache.find(key); it != overlapCache.end()) {
          return it->second;
        }
        std::complex<double> sum = 0.0;
        for (std::size_t i = 0; i < 2; ++i) {
          const VEdge& ae = a->e[i];
          const VEdge& be = b->e[i];
          if (system_.isZero(ae.w) || system_.isZero(be.w)) {
            continue;
          }
          sum += std::conj(system_.toComplex(ae.w)) * system_.toComplex(be.w) *
                 nodeOverlap(ae.node, be.node);
        }
        overlapCache.emplace(key, sum);
        return sum;
      };
      const std::complex<double> overlap = std::conj(system_.toComplex(pruned.w)) *
                                           system_.toComplex(root.w) *
                                           nodeOverlap(pruned.node, root.node);

      result.edge = pruned;
      result.budgetSpent = spent;
      result.edgesPruned = edgesPruned;
      result.nodesAfter = countNodes(pruned);
      result.achievedFidelity = std::min(1.0, std::norm(overlap));
      stats_.approx.pruneRuns.inc();
      stats_.approx.edgesPruned.inc(edgesPruned);
      stats_.approx.nodesRemoved.inc(
          result.nodesBefore >= result.nodesAfter ? result.nodesBefore - result.nodesAfter : 0);
      return result;
    }
  }

  // -- inspection ----------------------------------------------------------------

  /// Number of DD nodes reachable from the edge (terminals not counted) —
  /// the compactness measure plotted in the paper's figures.  Allocation
  /// free: traversal marks nodes with the package's visit epoch instead of
  /// materializing a visited set.
  [[nodiscard]] std::size_t countNodes(const VEdge& e) const { return countReachable(e.node); }
  [[nodiscard]] std::size_t countNodes(const MEdge& e) const { return countReachable(e.node); }

  /// All 2^n amplitudes as complex doubles.  For the algebraic system the
  /// path products are accumulated exactly and converted only at the leaves,
  /// so the result carries a single final rounding.
  [[nodiscard]] std::vector<std::complex<double>> amplitudes(const VEdge& e) const {
    std::vector<std::complex<double>> out(std::size_t{1} << nqubits_);
    if constexpr (System::kExact) {
      amplitudesExact(e.node, system_.value(e.w), 0, out);
    } else {
      amplitudesApprox(e.node, system_.toComplex(e.w), 0, out);
    }
    return out;
  }

  /// Single amplitude <bits|e>.
  [[nodiscard]] std::complex<double> amplitude(const VEdge& e, std::span<const bool> bits) const {
    assert(bits.size() == nqubits_);
    if constexpr (System::kExact) {
      alg::QOmega acc = system_.value(e.w);
      const VNode* node = e.node;
      for (const bool bit : bits) {
        if (acc.isZero()) {
          return {};
        }
        assert(node != nullptr);
        const VEdge& next = node->e[bit ? 1 : 0];
        acc *= system_.value(next.w);
        node = next.node;
      }
      return acc.toComplex();
    } else {
      std::complex<double> acc = system_.toComplex(e.w);
      const VNode* node = e.node;
      for (const bool bit : bits) {
        if (acc == std::complex<double>{}) {
          return {};
        }
        assert(node != nullptr);
        const VEdge& next = node->e[bit ? 1 : 0];
        acc *= system_.toComplex(next.w);
        node = next.node;
      }
      return acc;
    }
  }

private:
  // -- operation-cache keys ------------------------------------------------------
  // Trivially copyable PODs with strong 64-bit hashes (the computed tables
  // are direct-mapped, so the hash must avalanche into the low bits).

  struct EdgeKey {
    const void* n1;
    Weight w1;
    const void* n2;
    Weight w2;
    friend bool operator==(const EdgeKey&, const EdgeKey&) = default;
    [[nodiscard]] std::uint64_t hash() const noexcept {
      std::uint64_t h = detail::mix64(detail::pointerBits(n1));
      h = detail::hashCombine(h, static_cast<std::uint64_t>(w1));
      h = detail::hashCombine(h, detail::pointerBits(n2));
      h = detail::hashCombine(h, static_cast<std::uint64_t>(w2));
      return h;
    }
  };
  struct NodePairKey {
    const void* n1;
    const void* n2;
    friend bool operator==(const NodePairKey&, const NodePairKey&) = default;
    [[nodiscard]] std::uint64_t hash() const noexcept {
      return detail::hashCombine(detail::mix64(detail::pointerBits(n1)), detail::pointerBits(n2));
    }
  };
  struct NodeKey {
    const void* n;
    friend bool operator==(const NodeKey&, const NodeKey&) = default;
    [[nodiscard]] std::uint64_t hash() const noexcept {
      return detail::mix64(detail::pointerBits(n));
    }
  };

  // -- per-arity storage selection ----------------------------------------------

  template <class EdgeT> static constexpr bool kIsVector = EdgeT::Node::kBranching == 2;

  template <class EdgeT> [[nodiscard]] auto& uniqueFor() {
    if constexpr (kIsVector<EdgeT>) {
      return vUnique_;
    } else {
      return mUnique_;
    }
  }
  template <class EdgeT> [[nodiscard]] auto& memFor() {
    if constexpr (kIsVector<EdgeT>) {
      return vMem_;
    } else {
      return mMem_;
    }
  }
  template <class EdgeT> [[nodiscard]] obs::UniqueTableStats& uniqueStatsFor() {
    if constexpr (kIsVector<EdgeT>) {
      return stats_.vUnique;
    } else {
      return stats_.mUnique;
    }
  }
  template <class EdgeT> [[nodiscard]] auto& addCacheFor() {
    if constexpr (kIsVector<EdgeT>) {
      return vAddCache_;
    } else {
      return mAddCache_;
    }
  }
  template <class EdgeT> [[nodiscard]] obs::CacheStats& addStatsFor() {
    if constexpr (kIsVector<EdgeT>) {
      return stats_.vAdd;
    } else {
      return stats_.mAdd;
    }
  }
  template <class EdgeT> [[nodiscard]] auto& mulCacheFor() {
    if constexpr (kIsVector<EdgeT>) {
      return mvCache_;
    } else {
      return mmCache_;
    }
  }
  template <class EdgeT> [[nodiscard]] obs::CacheStats& mulStatsFor() {
    if constexpr (kIsVector<EdgeT>) {
      return stats_.mv;
    } else {
      return stats_.mm;
    }
  }
  template <class EdgeT> [[nodiscard]] auto& kronCacheFor() {
    if constexpr (kIsVector<EdgeT>) {
      return vKronCache_;
    } else {
      return mKronCache_;
    }
  }
  template <class EdgeT> [[nodiscard]] obs::CacheStats& kronStatsFor() {
    if constexpr (kIsVector<EdgeT>) {
      return stats_.vKron;
    } else {
      return stats_.mKron;
    }
  }

  // -- unified recursive algorithms ---------------------------------------------

  /// RAII bracket around one public kernel invocation.  Tracks nesting so the
  /// quiescent-point work (deferred unique-table growth, the peak-node gauge)
  /// runs exactly when the outermost kernel exits — the only moment in
  /// concurrent mode when no worker can still be probing the tables.
  class KernelScope {
  public:
    explicit KernelScope(Package& pkg) : pkg_(pkg) { ++pkg_.activeKernels_; }
    ~KernelScope() {
      if (--pkg_.activeKernels_ == 0 && pkg_.concurrent_) {
        pkg_.peakNodes_ = std::max(pkg_.peakNodes_, pkg_.allocatedNodes());
        pkg_.vUnique_.growIfPending();
        pkg_.mUnique_.growIfPending();
      }
    }
    KernelScope(const KernelScope&) = delete;
    KernelScope& operator=(const KernelScope&) = delete;

  private:
    Package& pkg_;
  };

  /// Canonical operand order (addition is commutative).  Keyed on the nodes'
  /// insert serials, not their addresses: under a tolerance-mode system the
  /// operand order steers interning, and heap addresses shift with thread
  /// arenas and allocation interleaving while the serial-mode insert order
  /// does not.  Callers guarantee both operands are non-terminal.
  template <class EdgeT> [[nodiscard]] bool orderForAdd(const EdgeT& a, const EdgeT& b) const {
    return a.node->seq < b.node->seq || (a.node == b.node && a.w <= b.w);
  }

  /// `depth` is the remaining fork budget: while nonzero, the child
  /// subproblems are split across exec::forkJoin (one half enqueued as a
  /// stealable pool task, the other half run inline); at zero — and always in
  /// serial mode, where parallelDepth_ is 0 — the loop below is the exact
  /// pre-concurrency recursion.  The budget is spent per *materialized*
  /// recursion step: a skip prefix shared by both operands is handled O(1)
  /// here (never recursed into), so the cutoff measures effective depth.
  ///
  /// Skip-level edges (matrix arity only): operands may be implicit
  /// identities — terminal, or skipping past the level where the other
  /// operand has its node.  The recursion descends to the highest
  /// *materialized* level (`core`, the minimum of the operand node
  /// variables), synthesizing the skipping side's diag(x, 0, 0, x) children
  /// on the fly; the result is cached at core level and the shared identity
  /// prefix [entering, core) is re-attached by patching the returned edge's
  /// var — which is also why the computed-table key needs no level field:
  /// for a given (node, weight) operand pair the core level is determined,
  /// and the cached entry is always the core-level result.
  template <class EdgeT>
  [[nodiscard]] EdgeT addImpl(const EdgeT& a, const EdgeT& b, std::size_t depth = 0) {
    if (system_.isZero(a.w)) {
      return b;
    }
    if (system_.isZero(b.w)) {
      return a;
    }
    if (a.isTerminal() && b.isTerminal()) {
      // Scalars at the bottom, or (matrix) two implicit identities over the
      // same span: either way the sum is (a.w + b.w) times that structure.
      return {nullptr, system_.add(a.w, b.w)};
    }
    constexpr std::size_t N = EdgeT::Node::kBranching;
    if constexpr (N == 2) {
      assert(!a.isTerminal() && !b.isTerminal() && a.node->var == b.node->var);
    } else {
      assert((a.isTerminal() || b.isTerminal() || a.var == b.var) &&
             "matrix add operands must enter at the same level");
    }
    // Entering level of the result; for vectors always the shared node var.
    const Qubit entering = a.isTerminal() ? b.var : a.var;
    const Qubit core = std::min(levelOf(a), levelOf(b));
    const bool ordered = a.isTerminal() || (!b.isTerminal() && orderForAdd(a, b));
    const EdgeT& x = ordered ? a : b;
    const EdgeT& y = ordered ? b : a;
    const EdgeKey key{x.node, x.w, y.node, y.w};
    auto& cache = addCacheFor<EdgeT>();
    obs::CacheStats& cacheStats = addStatsFor<EdgeT>();
    EdgeT hit;
    if (cache.lookup(key, hit)) {
      cacheStats.hits.inc();
      return enteringAt(hit, entering);
    }
    cacheStats.misses.inc();
    // Child i of operand z at the core level: the stored successor when z is
    // materialized there, otherwise the implicit identity's diagonal
    // (z itself, entering one level lower) or zero off-diagonal.
    const auto childOf = [&](const EdgeT& z, std::size_t i) -> EdgeT {
      if (z.node != nullptr && z.node->var == core) {
        return weighted(z.node->e[i], z.w);
      }
      if (i == 0 || i == N - 1) {
        return EdgeT{z.node, z.w, z.node != nullptr ? core + 1 : 0};
      }
      return EdgeT{nullptr, system_.zero()};
    };
    std::array<EdgeT, N> children;
    const auto computeRange = [&](std::size_t begin, std::size_t end, std::size_t d) {
      for (std::size_t i = begin; i < end; ++i) {
        children[i] = addImpl(childOf(x, i), childOf(y, i), d);
      }
    };
    if (depth != 0) {
      const std::size_t d = depth - 1;
      exec::forkJoin(
          executor_, [&]() { computeRange(0, N / 2, d); }, [&]() { computeRange(N / 2, N, d); });
    } else {
      computeRange(0, N, 0);
    }
    const EdgeT result = makeNode<EdgeT, N>(core, children);
    if (cache.insert(key, result)) {
      cacheStats.evictions.inc();
    }
    return enteringAt(result, entering);
  }

  /// Matrix-vector (result arity 2) and matrix-matrix (result arity 4)
  /// product through one recursion: the result has 2 rows and
  /// N/2 columns, each entry a sum of two partial products.  Forks split the
  /// two result rows (each row's products + additions form one task); the
  /// fork budget decrements per materialized level only (skip prefixes are
  /// fast-forwarded below), so the cutoff is an effective depth.
  ///
  /// Skip-level handling — the heart of the O(active qubits) gate apply:
  ///  - a terminal matrix operand is w·I over every remaining level, so
  ///    M·v = w·v without touching v's subgraph at all (O(1));
  ///  - a terminal right operand (matrix-matrix) symmetrically yields w·A;
  ///  - when both operands skip a shared prefix, the product over that
  ///    prefix is again the identity: recursion jumps straight to the
  ///    highest materialized level (`core`) and the prefix is re-attached by
  ///    patching the result's entering var — one O(1) step per product, not
  ///    one recursion level per skipped qubit;
  ///  - at core, the side not materialized there contributes its implicit
  ///    diag(z, 0, 0, z) children.
  /// The cache key stays the (m.node, v.node) pair: at least one of the two
  /// is materialized at core, so the cached entry is always the
  /// core-entering result for that pair (prefixes of any length share it).
  template <class REdge>
  [[nodiscard]] REdge multiplyImpl(const MEdge& m, const REdge& v, std::size_t depth = 0) {
    if (system_.isZero(m.w) || system_.isZero(v.w)) {
      return REdge{nullptr, system_.zero()};
    }
    const Weight w = system_.mul(m.w, v.w);
    if (m.isTerminal()) {
      // m is w·identity over every level it spans (or a bare scalar at the
      // bottom): the product is w times the other operand either way.
      return REdge{v.node, w, v.var};
    }
    constexpr std::size_t N = REdge::Node::kBranching;
    if constexpr (N == 4) {
      if (v.isTerminal()) {
        return REdge{m.node, w, m.var};
      }
    } else {
      assert(!v.isTerminal() && v.node->var == v.var);
    }
    assert(m.var == v.var && "multiply operands must enter at the same level");
    const Qubit entering = v.var;
    const Qubit core = std::min(m.node->var, levelOf(v));
    const NodePairKey key{m.node, v.node};
    auto& cache = mulCacheFor<REdge>();
    obs::CacheStats& cacheStats = mulStatsFor<REdge>();
    REdge hit;
    if (cache.lookup(key, hit)) {
      cacheStats.hits.inc();
      return enteringAt(weighted(hit, w), entering);
    }
    cacheStats.misses.inc();
    constexpr std::size_t cols = N / 2;
    // Operand children at the core level; the stripped weights stay factored
    // out (the cache stores the weight-free product).
    const auto mChild = [&](std::size_t i) -> MEdge {
      if (m.node->var == core) {
        return m.node->e[i];
      }
      return (i == 0 || i == 3) ? MEdge{m.node, system_.one(), core + 1} : zeroMatrix();
    };
    const auto vChild = [&](std::size_t i) -> REdge {
      if (v.node->var == core) {
        return v.node->e[i];
      }
      return (i == 0 || i == N - 1) ? REdge{v.node, system_.one(), core + 1}
                                    : REdge{nullptr, system_.zero()};
    };
    std::array<REdge, N> children;
    const auto computeRow = [&](std::size_t row, std::size_t d) {
      for (std::size_t col = 0; col < cols; ++col) {
        const REdge p0 = multiplyImpl(mChild(2 * row), vChild(col), d);
        const REdge p1 = multiplyImpl(mChild(2 * row + 1), vChild(cols + col), d);
        children[cols * row + col] = addImpl(p0, p1, d);
      }
    };
    if (depth != 0) {
      const std::size_t d = depth - 1;
      exec::forkJoin(
          executor_, [&]() { computeRow(0, d); }, [&]() { computeRow(1, d); });
    } else {
      computeRow(0, 0);
      computeRow(1, 0);
    }
    const REdge result = makeNode<REdge, N>(core, children);
    if (cache.insert(key, result)) {
      cacheStats.evictions.inc();
    }
    return enteringAt(weighted(result, w), entering);
  }

  /// Kronecker product.  Matrix edges keep their skips: grafting `bottom`
  /// under a skip edge or a terminal (identity) edge needs no new nodes at
  /// all — the result is the same node entered higher up.  Inside the
  /// recursion, terminal children of `top` are re-entered with their actual
  /// context level so the graft point is known (their canonical var of 0
  /// carries no position).
  template <class EdgeT>
  [[nodiscard]] EdgeT kroneckerImpl(const EdgeT& top, const EdgeT& bottom, std::size_t depth = 0) {
    constexpr std::size_t N = EdgeT::Node::kBranching;
    if (system_.isZero(top.w) || system_.isZero(bottom.w)) {
      return EdgeT{nullptr, system_.zero()};
    }
    const Weight w = system_.mul(top.w, bottom.w);
    if (top.isTerminal()) {
      if constexpr (N == 2) {
        return EdgeT{bottom.node, w, bottom.var};
      } else {
        // top = identity over [top.var, bottom's levels): graft bottom under
        // the skip.  bottom terminal folds into one identity span.
        return EdgeT{bottom.node, w, bottom.node != nullptr ? top.var : 0};
      }
    }
    const NodePairKey key{top.node, bottom.node};
    auto& cache = kronCacheFor<EdgeT>();
    obs::CacheStats& cacheStats = kronStatsFor<EdgeT>();
    EdgeT hit;
    if (cache.lookup(key, hit)) {
      cacheStats.hits.inc();
      return enteringAt(weighted(hit, w), top.var);
    }
    cacheStats.misses.inc();
    const EdgeT stripBottom{bottom.node, system_.one(), bottom.var};
    std::array<EdgeT, N> children;
    const auto computeRange = [&](std::size_t begin, std::size_t end, std::size_t d) {
      for (std::size_t i = begin; i < end; ++i) {
        EdgeT child = top.node->e[i];
        if (child.isTerminal()) {
          child.var = top.node->var + 1; // actual context of this terminal
        }
        children[i] = kroneckerImpl(child, stripBottom, d);
      }
    };
    if (depth != 0) {
      const std::size_t d = depth - 1;
      exec::forkJoin(
          executor_, [&]() { computeRange(0, N / 2, d); }, [&]() { computeRange(N / 2, N, d); });
    } else {
      computeRange(0, N, 0);
    }
    const EdgeT result = makeNode<EdgeT, N>(top.node->var, children);
    if (cache.insert(key, result)) {
      cacheStats.evictions.inc();
    }
    return enteringAt(weighted(result, w), top.var);
  }

  template <class EdgeT> [[nodiscard]] EdgeT weighted(const EdgeT& e, Weight w) {
    if (system_.isZero(e.w) || system_.isZero(w)) {
      return EdgeT{nullptr, system_.zero()};
    }
    return {e.node, system_.mul(w, e.w), e.var};
  }
  [[nodiscard]] MEdge scale(const MEdge& e, Weight w) { return weighted(e, w); }

  /// The edge's node level, with the terminal counting as the bottom of the
  /// register — the natural extent bound for implicit-identity spans.
  template <class EdgeT> [[nodiscard]] Qubit levelOf(const EdgeT& e) const {
    return e.node != nullptr ? e.node->var : nqubits_;
  }

  /// Re-enter `e` at `var` (prefix patch for skip-level edges); terminal and
  /// zero edges keep their canonical var of 0.
  template <class EdgeT> [[nodiscard]] static EdgeT enteringAt(EdgeT e, Qubit var) {
    e.var = e.node != nullptr ? var : 0;
    return e;
  }

  /// The weight 2^k (trace of a k-level identity span), built by exact
  /// repeated doubling — exact in both weight systems.
  [[nodiscard]] Weight pow2Weight(Qubit k) {
    Weight result = system_.one();
    for (Qubit i = 0; i < k; ++i) {
      result = system_.add(result, result);
    }
    return result;
  }

  /// trace() body with the entering level made explicit: a skipped or
  /// terminal identity span over s levels multiplies the subdiagram's trace
  /// by 2^s (each implicit level doubles the diagonal).  The cache keeps the
  /// per-node trace computed at the node's own level, so entries are shared
  /// across entering levels.
  [[nodiscard]] Weight traceImpl(const MEdge& a, Qubit level) {
    if (system_.isZero(a.w)) {
      return system_.zero();
    }
    if (a.isTerminal()) {
      // w·I over [level, n): 2^(n - level) diagonal entries of w.
      return system_.mul(a.w, pow2Weight(nqubits_ - level));
    }
    Weight per = system_.zero();
    const NodeKey key{a.node};
    if (traceCache_.lookup(key, per)) {
      stats_.trace.hits.inc();
    } else {
      stats_.trace.misses.inc();
      per = system_.add(traceImpl(a.node->e[0], a.node->var + 1),
                        traceImpl(a.node->e[3], a.node->var + 1));
      if (traceCache_.insert(key, per)) {
        stats_.trace.evictions.inc();
      }
    }
    Weight contribution = system_.mul(a.w, per);
    if (a.node->var > level) {
      contribution = system_.mul(contribution, pow2Weight(a.node->var - level));
    }
    return contribution;
  }

  // -- node construction ---------------------------------------------------------

  template <class EdgeT, std::size_t N>
  [[nodiscard]] EdgeT makeNode(Qubit var, std::array<EdgeT, N> children) {
    assert(var < nqubits_);
    // Zero-weight edges point to the terminal canonically; non-zero child
    // edges get their canonical entering level stamped here (a child of a
    // level-`var` node enters at var + 1 by definition — callers may pass
    // edges carried over from other levels, e.g. the snapshot loader).
    bool allZero = true;
    std::array<Weight, N> weights;
    for (std::size_t i = 0; i < N; ++i) {
      if (system_.isZero(children[i].w)) {
        children[i] = EdgeT{nullptr, system_.zero()};
        weights[i] = system_.zero();
      } else {
        allZero = false;
        weights[i] = children[i].w;
        children[i].var = children[i].node != nullptr ? var + 1 : 0;
        assert(children[i].node == nullptr || children[i].node->var > var);
      }
    }
    if (allZero) {
      return EdgeT{nullptr, system_.zero()};
    }
    const Weight factor = system_.normalize(std::span<Weight>(weights));
    for (std::size_t i = 0; i < N; ++i) {
      // Under a tolerant numeric system, normalization may snap a weight to
      // zero; keep the zero-edge canonical form (terminal stub).
      if (system_.isZero(weights[i])) {
        children[i] = EdgeT{nullptr, system_.zero()};
        weights[i] = system_.zero();
      } else {
        children[i].w = weights[i];
      }
    }
    if constexpr (N == 4) {
      // Canonical identity collapse: diag(c, c) ≡ I ⊗ c is never
      // materialized — the child re-enters one level higher instead.
      // Checking *after* normalization (which may unify nearly-equal
      // tolerance-mode weights) guarantees no identity-pattern node can
      // slip into the unique table, so the skipped and materialized forms
      // of one operator can never coexist.
      if (skipIdentities_ && children[1].isTerminal() && system_.isZero(children[1].w) &&
          children[2].isTerminal() && system_.isZero(children[2].w) &&
          !system_.isZero(children[0].w) && children[0].node == children[3].node &&
          children[0].w == children[3].w) {
        EdgeT e = children[0];
        e.w = system_.mul(factor, e.w);
        e.var = e.node != nullptr ? var : 0;
        return e;
      }
    }

    auto& unique = uniqueFor<EdgeT>();
    obs::UniqueTableStats& tableStats = uniqueStatsFor<EdgeT>();
    const std::uint64_t contentHash = hashNodeContents(var, children);
    // In concurrent mode the whole find-or-insert sequence holds the bucket's
    // stripe lock, making the probe-then-link atomic per bucket; the guard is
    // a no-op handle in serial mode.  Lock order: stripe before the arena's
    // refill mutex (mem.get may refill), never the reverse.
    const auto stripe = unique.lockStripe(contentHash);
    tableStats.lookups.inc();
    if (auto* existing = unique.find(var, children, contentHash)) {
      tableStats.hits.inc();
      return EdgeT{existing, factor};
    }
    if constexpr (obs::kEnabled) {
      // The insert below will lengthen a chain iff the bucket is occupied.
      if (unique.wouldCollide(contentHash)) {
        tableStats.collisions.inc();
      }
    }
    auto& mem = memFor<EdgeT>();
    if (mem.available() > 0) {
      stats_.nodeReuses.inc();
    } else {
      stats_.nodeAllocations.inc();
    }
    auto* node = concurrent_ ? mem.get(exec::workerSlot()) : mem.get();
    node->var = var;
    node->ref = 0;
    node->seq = concurrent_
                    ? std::atomic_ref<std::uint64_t>(nodeSeq_).fetch_add(
                          1, std::memory_order_relaxed)
                    : nodeSeq_++;
    node->e = children;
    for (const EdgeT& child : children) {
      if (child.node != nullptr) {
        if (concurrent_) {
          // Another worker interning a sibling node may bump the same child
          // concurrently; the count itself is only *read* at quiescent
          // points (GC sweep), so relaxed is enough.
          std::atomic_ref<std::uint32_t>(child.node->ref)
              .fetch_add(1, std::memory_order_relaxed);
        } else {
          ++child.node->ref;
        }
      }
    }
    unique.insert(node, contentHash);
    if (!concurrent_ && !peakSampleSuppressed_) {
      // Concurrent mode samples the peak once per outermost kernel exit
      // (KernelScope) instead of per insert — the gauge is monotone, so the
      // only loss is intra-kernel resolution.
      peakNodes_ = std::max(peakNodes_, allocatedNodes());
    }
    return EdgeT{node, factor};
  }

  // -- traversal (allocation-free, visit-epoch marked) --------------------------

  template <class NodeT> [[nodiscard]] std::size_t countReachable(const NodeT* root) const {
    ++visitEpoch_;
    return countVisit(root);
  }
  template <class NodeT> [[nodiscard]] std::size_t countVisit(const NodeT* node) const {
    if (node == nullptr || node->visit == visitEpoch_) {
      return 0;
    }
    node->visit = visitEpoch_;
    std::size_t count = 1;
    for (const auto& child : node->e) {
      count += countVisit(child.node);
    }
    return count;
  }

  /// Bottom-up construction for makeStateFromWeights: the DD over variables
  /// [var, n) representing the amplitude block `amplitudes`.
  [[nodiscard]] VEdge buildStateRange(Qubit var, std::span<const Weight> amplitudes) {
    if (var == nqubits_) {
      assert(amplitudes.size() == 1);
      return VEdge{nullptr, amplitudes[0]};
    }
    const std::size_t half = amplitudes.size() / 2;
    std::array<VEdge, 2> children{buildStateRange(var + 1, amplitudes.subspan(0, half)),
                                  buildStateRange(var + 1, amplitudes.subspan(half))};
    if (system_.isZero(children[0].w) && system_.isZero(children[1].w)) {
      return zeroVector();
    }
    return makeVNode(var, children);
  }

  void amplitudesExact(const VNode* node, const alg::QOmega& acc, std::size_t base,
                       std::vector<std::complex<double>>& out) const {
    if (acc.isZero()) {
      return;
    }
    if (node == nullptr) {
      out[base] = acc.toComplex();
      return;
    }
    const std::size_t stride = std::size_t{1} << (nqubits_ - node->var - 1);
    amplitudesExact(node->e[0].node, acc * system_.value(node->e[0].w), base, out);
    amplitudesExact(node->e[1].node, acc * system_.value(node->e[1].w), base + stride, out);
  }

  void amplitudesApprox(const VNode* node, std::complex<double> acc, std::size_t base,
                        std::vector<std::complex<double>>& out) const {
    if (acc == std::complex<double>{}) {
      return;
    }
    if (node == nullptr) {
      out[base] = acc;
      return;
    }
    const std::size_t stride = std::size_t{1} << (nqubits_ - node->var - 1);
    amplitudesApprox(node->e[0].node, acc * system_.toComplex(node->e[0].w), base, out);
    amplitudesApprox(node->e[1].node, acc * system_.toComplex(node->e[1].w), base + stride, out);
  }

  // -- cache registry ------------------------------------------------------------
  // The single source of truth mapping CacheKind bits to the table instances;
  // clearCaches() iterates it instead of an if-chain per kind.

  struct CacheRegistryEntry {
    CacheKind kind;
    void (*clear)(Package&);
    void (*setLossless)(Package&, bool);
    void (*setConcurrent)(Package&, bool);
  };
  template <auto MemberPtr> static constexpr CacheRegistryEntry registryEntry(CacheKind kind) {
    return {kind, [](Package& p) { (p.*MemberPtr).clear(); },
            [](Package& p, bool on) { (p.*MemberPtr).setLossless(on); },
            [](Package& p, bool on) { (p.*MemberPtr).setConcurrent(on); }};
  }
  static constexpr std::array<CacheRegistryEntry, 9> kCacheRegistry{{
      registryEntry<&Package::vAddCache_>(CacheKind::VAdd),
      registryEntry<&Package::mAddCache_>(CacheKind::MAdd),
      registryEntry<&Package::mvCache_>(CacheKind::MV),
      registryEntry<&Package::mmCache_>(CacheKind::MM),
      registryEntry<&Package::vKronCache_>(CacheKind::VKron),
      registryEntry<&Package::mKronCache_>(CacheKind::MKron),
      registryEntry<&Package::transposeCache_>(CacheKind::Transpose),
      registryEntry<&Package::innerCache_>(CacheKind::Inner),
      registryEntry<&Package::traceCache_>(CacheKind::Trace),
  }};

  Qubit nqubits_;
  System system_;
  obs::PackageStats stats_;

  MemoryManager<VNode> vMem_;
  MemoryManager<MNode> mMem_;
  UniqueTable<VNode> vUnique_;
  UniqueTable<MNode> mUnique_;
  std::size_t peakNodes_ = 0;
  /// True while prune() rebuilds: per-insert peak samples are suppressed so
  /// the gauge keeps the same (end-of-rebuild) resolution in serial and
  /// concurrent mode — the byte-identity contract covers the peak column.
  bool peakSampleSuppressed_ = false;
  std::uint64_t nodeSeq_ = 0; ///< next insert serial (atomic_ref'd when concurrent)

  std::size_t gcWatermark_ = 0;
  std::size_t gcRuns_ = 0;
  GcReport lastGcReport_{};

  exec::ThreadPool* executor_ = nullptr;     ///< kernel fork target (not owned)
  std::size_t configParallelDepth_ = 0;      ///< Config::parallelDepth (0 = derive)
  std::size_t parallelDepth_ = 0;            ///< active fork cutoff (0 = serial)
  bool concurrent_ = false;                  ///< kernels run the parallel paths
  int activeKernels_ = 0;                    ///< KernelScope nesting depth
  bool skipIdentities_ = true;               ///< Config::skipIdentities (matrix skip edges)

  mutable std::uint64_t visitEpoch_ = 0; ///< current traversal generation

  ComputedTable<EdgeKey, VEdge, kAddCacheEntries> vAddCache_;
  ComputedTable<EdgeKey, MEdge, kAddCacheEntries> mAddCache_;
  ComputedTable<NodePairKey, VEdge, kMulCacheEntries> mvCache_;
  ComputedTable<NodePairKey, MEdge, kMulCacheEntries> mmCache_;
  ComputedTable<NodePairKey, VEdge, kKronCacheEntries> vKronCache_;
  ComputedTable<NodePairKey, MEdge, kKronCacheEntries> mKronCache_;
  ComputedTable<NodeKey, MEdge, kUnaryCacheEntries> transposeCache_;
  ComputedTable<NodePairKey, Weight, kInnerCacheEntries> innerCache_;
  ComputedTable<NodeKey, Weight, kUnaryCacheEntries> traceCache_;
};

} // namespace qadd::dd
