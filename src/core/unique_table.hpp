/// \file unique_table.hpp
/// The canonicity store of the DD package: a bucket-chained hash table over
/// node *contents* (variable + successor edges), chaining intrusively through
/// Node::next.  Replaces the former std::unordered_map<UniqueKey, Node*>
/// tables: no key objects are materialized (the node is its own key), no
/// per-insert heap allocation, the content hash is computed once and reused
/// across find/insert, and growth rehashes by relinking the existing nodes.
///
/// The table also owns the GC sweep: dead (ref == 0) nodes are unlinked in
/// place and handed back to the caller (which returns them to the memory
/// manager), iterating until no more nodes die — freeing a node decrements
/// its children, which may become dead in turn.
#pragma once

#include "core/dd_node.hpp"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace qadd::dd {

template <class NodeT> class UniqueTable {
public:
  using EdgeT = typename NodeT::EdgeT;
  static constexpr std::size_t kBranching = NodeT::kBranching;
  static constexpr std::size_t kDefaultInitialBuckets = 1024;
  /// Grow (double) when size exceeds buckets * kMaxLoadNumer / kMaxLoadDenom.
  static constexpr std::size_t kMaxLoadNumer = 3;
  static constexpr std::size_t kMaxLoadDenom = 4;

  explicit UniqueTable(std::size_t initialBuckets = kDefaultInitialBuckets)
      : buckets_(roundUpToPowerOfTwo(initialBuckets), nullptr) {}

  UniqueTable(const UniqueTable&) = delete;
  UniqueTable& operator=(const UniqueTable&) = delete;

  /// Content hash used for both find() and insert().
  [[nodiscard]] static std::uint64_t hash(Qubit var, const std::array<EdgeT, kBranching>& children) {
    return hashNodeContents(var, children);
  }

  /// The canonical node with exactly these contents, or nullptr.
  [[nodiscard]] NodeT* find(Qubit var, const std::array<EdgeT, kBranching>& children,
                            std::uint64_t contentHash) const {
    for (NodeT* node = buckets_[indexOf(contentHash)]; node != nullptr; node = node->next) {
      if (node->var == var && node->e == children) {
        return node;
      }
    }
    return nullptr;
  }

  /// True iff inserting `contentHash` now would lengthen an occupied bucket
  /// (the unique-table "collision" telemetry event).
  [[nodiscard]] bool wouldCollide(std::uint64_t contentHash) const {
    return buckets_[indexOf(contentHash)] != nullptr;
  }

  /// Link a (freshly initialized, not yet present) node into the table.
  /// Grows and rehashes first when the load factor would be exceeded.
  void insert(NodeT* node, std::uint64_t contentHash) {
    if ((size_ + 1) * kMaxLoadDenom > buckets_.size() * kMaxLoadNumer) {
      rehash(buckets_.size() * 2);
    }
    NodeT*& bucket = buckets_[indexOf(contentHash)];
    node->next = bucket;
    bucket = node;
    ++size_;
  }

  /// Number of nodes stored.
  [[nodiscard]] std::size_t size() const { return size_; }
  /// Number of hash buckets (a power of two).
  [[nodiscard]] std::size_t bucketCount() const { return buckets_.size(); }
  /// Load factor entries / buckets.
  [[nodiscard]] double loadFactor() const {
    return static_cast<double>(size_) / static_cast<double>(buckets_.size());
  }

  /// Visit every stored node.
  template <class F> void forEach(F&& visit) const {
    for (NodeT* node : buckets_) {
      for (; node != nullptr; node = node->next) {
        visit(node);
      }
    }
  }

  /// Remove every node whose ref count is (or, by cascading, becomes) zero.
  /// `release(node)` is called for each removed node after its children's ref
  /// counts have been decremented; the callee owns the storage from then on.
  /// Returns the number of nodes swept.
  template <class Release> std::size_t sweep(Release&& release) {
    std::size_t swept = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      for (NodeT*& bucket : buckets_) {
        NodeT** link = &bucket;
        while (*link != nullptr) {
          NodeT* node = *link;
          if (node->ref == 0) {
            *link = node->next;
            for (EdgeT& child : node->e) {
              if (child.node != nullptr) {
                assert(child.node->ref > 0);
                --child.node->ref;
              }
            }
            release(node);
            --size_;
            ++swept;
            changed = true;
          } else {
            link = &node->next;
          }
        }
      }
    }
    return swept;
  }

private:
  [[nodiscard]] std::size_t indexOf(std::uint64_t contentHash) const {
    return static_cast<std::size_t>(contentHash) & (buckets_.size() - 1);
  }

  [[nodiscard]] static std::size_t roundUpToPowerOfTwo(std::size_t n) {
    std::size_t p = 1;
    while (p < n) {
      p <<= 1U;
    }
    return p;
  }

  void rehash(std::size_t newBucketCount) {
    std::vector<NodeT*> old = std::move(buckets_);
    buckets_.assign(newBucketCount, nullptr);
    for (NodeT* node : old) {
      while (node != nullptr) {
        NodeT* next = node->next;
        NodeT*& bucket = buckets_[indexOf(hash(node->var, node->e))];
        node->next = bucket;
        bucket = node;
        node = next;
      }
    }
  }

  std::vector<NodeT*> buckets_;
  std::size_t size_ = 0;
};

} // namespace qadd::dd
