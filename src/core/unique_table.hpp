/// \file unique_table.hpp
/// The canonicity store of the DD package: a bucket-chained hash table over
/// node *contents* (variable + successor edges), chaining intrusively through
/// Node::next.  Replaces the former std::unordered_map<UniqueKey, Node*>
/// tables: no key objects are materialized (the node is its own key), no
/// per-insert heap allocation, the content hash is computed once and reused
/// across find/insert, and growth rehashes by relinking the existing nodes.
///
/// The table also owns the GC sweep: dead (ref == 0) nodes are unlinked in
/// place and handed back to the caller (which returns them to the memory
/// manager), iterating until no more nodes die — freeing a node decrements
/// its children, which may become dead in turn.
///
/// Concurrent mode (setConcurrent): the parallel fork-join kernels intern
/// nodes from every worker, so the bucket array is guarded by a fixed set of
/// 64 *stripe* mutexes — bucket `b` belongs to stripe `b & 63`, and a caller
/// brackets its find-or-insert sequence with lockStripe(contentHash), making
/// the probe-then-link atomic per bucket while leaving the memory layout
/// (bucket array, chains, growth thresholds) byte-identical to the serial
/// table.  Growth cannot rehash under a single stripe lock, so a load-factor
/// breach during kernels only sets a pending flag; the package applies it at
/// the next quiescent point via growIfPending() — the GC sweep is likewise a
/// quiescent-point (stop-the-world) operation and takes no locks.  In serial
/// mode lockStripe is a no-op and nothing here costs a single atomic RMW
/// beyond the size counter.
#pragma once

#include "core/dd_node.hpp"

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace qadd::dd {

template <class NodeT> class UniqueTable {
public:
  using EdgeT = typename NodeT::EdgeT;
  static constexpr std::size_t kBranching = NodeT::kBranching;
  static constexpr std::size_t kDefaultInitialBuckets = 1024;
  /// Grow (double) when size exceeds buckets * kMaxLoadNumer / kMaxLoadDenom.
  static constexpr std::size_t kMaxLoadNumer = 3;
  static constexpr std::size_t kMaxLoadDenom = 4;
  /// Stripe-mutex count of the concurrent mode (power of two).
  static constexpr std::size_t kStripes = 64;

  explicit UniqueTable(std::size_t initialBuckets = kDefaultInitialBuckets)
      : buckets_(roundUpToPowerOfTwo(initialBuckets), nullptr) {}

  UniqueTable(const UniqueTable&) = delete;
  UniqueTable& operator=(const UniqueTable&) = delete;

  /// RAII stripe lock; a no-op handle in serial mode.
  class StripeGuard {
  public:
    explicit StripeGuard(std::mutex* mutex) : mutex_(mutex) {
      if (mutex_ != nullptr) {
        mutex_->lock();
      }
    }
    ~StripeGuard() {
      if (mutex_ != nullptr) {
        mutex_->unlock();
      }
    }
    StripeGuard(const StripeGuard&) = delete;
    StripeGuard& operator=(const StripeGuard&) = delete;
    StripeGuard(StripeGuard&& other) noexcept : mutex_(other.mutex_) { other.mutex_ = nullptr; }
    StripeGuard& operator=(StripeGuard&&) = delete;

  private:
    std::mutex* mutex_;
  };

  /// Enable/disable the striped-locking protocol.  Quiescent-point only (no
  /// concurrent callers while switching).  Lock order where it matters:
  /// stripe mutex before any arena-refill mutex (makeNode allocates while
  /// holding its stripe), never the reverse.
  void setConcurrent(bool concurrent) {
    if (concurrent && stripes_ == nullptr) {
      stripes_ = std::make_unique<std::mutex[]>(kStripes);
    }
    concurrent_ = concurrent;
  }
  [[nodiscard]] bool concurrent() const { return concurrent_; }

  /// Lock the stripe owning `contentHash`'s bucket for a find-or-insert
  /// sequence.  No-op in serial mode.
  [[nodiscard]] StripeGuard lockStripe(std::uint64_t contentHash) {
    return StripeGuard(concurrent_ ? &stripes_[stripeOf(contentHash)] : nullptr);
  }

  /// Apply a growth request deferred by a kernel-mode insert.  Quiescent-
  /// point only.  Returns true iff a rehash ran.
  bool growIfPending() {
    if (!pendingGrowth_.load(std::memory_order_relaxed)) {
      return false;
    }
    pendingGrowth_.store(false, std::memory_order_relaxed);
    std::size_t target = buckets_.size();
    while (size() * kMaxLoadDenom > target * kMaxLoadNumer) {
      target *= 2;
    }
    if (target == buckets_.size()) {
      return false;
    }
    rehash(target);
    return true;
  }

  /// Content hash used for both find() and insert().
  [[nodiscard]] static std::uint64_t hash(Qubit var, const std::array<EdgeT, kBranching>& children) {
    return hashNodeContents(var, children);
  }

  /// The canonical node with exactly these contents, or nullptr.
  [[nodiscard]] NodeT* find(Qubit var, const std::array<EdgeT, kBranching>& children,
                            std::uint64_t contentHash) const {
    for (NodeT* node = buckets_[indexOf(contentHash)]; node != nullptr; node = node->next) {
      if (node->var == var && node->e == children) {
        return node;
      }
    }
    return nullptr;
  }

  /// True iff inserting `contentHash` now would lengthen an occupied bucket
  /// (the unique-table "collision" telemetry event).
  [[nodiscard]] bool wouldCollide(std::uint64_t contentHash) const {
    return buckets_[indexOf(contentHash)] != nullptr;
  }

  /// Link a (freshly initialized, not yet present) node into the table.
  /// Grows and rehashes first when the load factor would be exceeded — in
  /// concurrent mode the rehash is deferred (growIfPending) because it would
  /// need every stripe at once; the caller must hold the content hash's
  /// stripe lock there.
  void insert(NodeT* node, std::uint64_t contentHash) {
    if ((size() + 1) * kMaxLoadDenom > buckets_.size() * kMaxLoadNumer) {
      if (concurrent_) {
        pendingGrowth_.store(true, std::memory_order_relaxed);
      } else {
        rehash(buckets_.size() * 2);
      }
    }
    NodeT*& bucket = buckets_[indexOf(contentHash)];
    node->next = bucket;
    bucket = node;
    if (concurrent_) {
      size_.fetch_add(1, std::memory_order_relaxed);
    } else {
      size_.store(size() + 1, std::memory_order_relaxed);
    }
  }

  /// Number of nodes stored.  Safe to read while kernels are interning (the
  /// `--timeline` fill gauge); the value is then approximate by design.
  [[nodiscard]] std::size_t size() const { return size_.load(std::memory_order_relaxed); }
  /// Number of hash buckets (a power of two).
  [[nodiscard]] std::size_t bucketCount() const { return buckets_.size(); }
  /// Load factor entries / buckets.
  [[nodiscard]] double loadFactor() const {
    return static_cast<double>(size()) / static_cast<double>(buckets_.size());
  }

  /// Visit every stored node.
  template <class F> void forEach(F&& visit) const {
    for (NodeT* node : buckets_) {
      for (; node != nullptr; node = node->next) {
        visit(node);
      }
    }
  }

  /// Remove every node whose ref count is (or, by cascading, becomes) zero.
  /// `release(node)` is called for each removed node after its children's ref
  /// counts have been decremented; the callee owns the storage from then on.
  /// Returns the number of nodes swept.
  template <class Release> std::size_t sweep(Release&& release) {
    std::size_t swept = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      for (NodeT*& bucket : buckets_) {
        NodeT** link = &bucket;
        while (*link != nullptr) {
          NodeT* node = *link;
          if (node->ref == 0) {
            *link = node->next;
            for (EdgeT& child : node->e) {
              if (child.node != nullptr) {
                assert(child.node->ref > 0);
                --child.node->ref;
              }
            }
            release(node);
            size_.store(size() - 1, std::memory_order_relaxed);
            ++swept;
            changed = true;
          } else {
            link = &node->next;
          }
        }
      }
    }
    return swept;
  }

private:
  [[nodiscard]] std::size_t indexOf(std::uint64_t contentHash) const {
    return static_cast<std::size_t>(contentHash) & (buckets_.size() - 1);
  }

  /// Stripe owning a content hash's bucket.  Derived from the bucket index,
  /// so two hashes landing in the same bucket always share a stripe; the
  /// mapping only shifts across rehashes, which are quiescent-point events.
  [[nodiscard]] std::size_t stripeOf(std::uint64_t contentHash) const {
    return indexOf(contentHash) & (kStripes - 1);
  }

  [[nodiscard]] static std::size_t roundUpToPowerOfTwo(std::size_t n) {
    std::size_t p = 1;
    while (p < n) {
      p <<= 1U;
    }
    return p;
  }

  void rehash(std::size_t newBucketCount) {
    std::vector<NodeT*> old = std::move(buckets_);
    buckets_.assign(newBucketCount, nullptr);
    for (NodeT* node : old) {
      while (node != nullptr) {
        NodeT* next = node->next;
        NodeT*& bucket = buckets_[indexOf(hash(node->var, node->e))];
        node->next = bucket;
        bucket = node;
        node = next;
      }
    }
  }

  std::vector<NodeT*> buckets_;
  std::atomic<std::size_t> size_{0};
  std::unique_ptr<std::mutex[]> stripes_; ///< allocated on first setConcurrent(true)
  std::atomic<bool> pendingGrowth_{false};
  bool concurrent_ = false;
};

} // namespace qadd::dd
