#include "core/algebraic_system.hpp"

#include <array>
#include <cassert>

namespace qadd::dd {

using alg::QOmega;
using alg::ZOmega;

AlgebraicSystem::AlgebraicSystem(Config config) : config_(config) {
  const Weight z = intern(QOmega::zero());
  const Weight o = intern(QOmega::one());
  assert(z == 0 && o == 1);
  (void)z;
  (void)o;
}

AlgebraicSystem::Weight AlgebraicSystem::intern(const QOmega& value) {
  // Concurrent mode serializes the whole find-or-insert on one mutex;
  // value(w) readers never take it (entries_ is a StableVector).  Exact
  // interning means the interleaving can only reorder handle numbers within
  // a run, never change which values exist.
  std::unique_lock<std::mutex> lock(internMutex_, std::defer_lock);
  if (concurrent_) {
    lock.lock();
  }
  const auto [it, inserted] = pool_.try_emplace(value, static_cast<Weight>(entries_.size()));
  if (inserted) {
    entries_.push_back(&it->first);
    const std::size_t bits = value.maxBits();
    if (bits > maxBits_.load(std::memory_order_relaxed)) {
      maxBits_.store(bits, std::memory_order_relaxed);
    }
    if constexpr (obs::kEnabled) {
      if (bitWidthHistogram_.size() <= bits) {
        bitWidthHistogram_.resize(bits + 1, 0);
      }
      ++bitWidthHistogram_[bits];
    }
  }
  return it->second;
}

AlgebraicSystem::Weight AlgebraicSystem::add(Weight a, Weight b) {
  if (isZero(a)) {
    return b;
  }
  if (isZero(b)) {
    return a;
  }
  return cachedOp(addCache_, commutativeKey(a, b), [&] { return intern(value(a) + value(b)); });
}

AlgebraicSystem::Weight AlgebraicSystem::sub(Weight a, Weight b) {
  if (isZero(b)) {
    return a;
  }
  return cachedOp(subCache_, WeightPairKey{a, b}, [&] { return intern(value(a) - value(b)); });
}

AlgebraicSystem::Weight AlgebraicSystem::mul(Weight a, Weight b) {
  if (isZero(a) || isZero(b)) {
    return 0;
  }
  if (isOne(a)) {
    return b;
  }
  if (isOne(b)) {
    return a;
  }
  return cachedOp(mulCache_, commutativeKey(a, b), [&] { return intern(value(a) * value(b)); });
}

AlgebraicSystem::Weight AlgebraicSystem::div(Weight a, Weight b) {
  if (isZero(a)) {
    return 0;
  }
  if (isOne(b)) {
    return a;
  }
  return cachedOp(divCache_, WeightPairKey{a, b},
                  [&] { return intern(value(a) * value(inverseOf(b))); });
}

AlgebraicSystem::Weight AlgebraicSystem::inverseOf(Weight w) {
  assert(!isZero(w));
  if (isOne(w)) {
    return 1;
  }
  return cachedOp(invCache_, WeightPairKey{w, w}, [&] { return intern(value(w).inverse()); });
}

AlgebraicSystem::Weight AlgebraicSystem::neg(Weight a) {
  if (isZero(a)) {
    return 0;
  }
  return intern(-value(a));
}

AlgebraicSystem::Weight AlgebraicSystem::conj(Weight a) {
  if (isZero(a)) {
    return 0;
  }
  return intern(value(a).conj());
}

AlgebraicSystem::Weight AlgebraicSystem::normalize(std::span<Weight> weights) {
  std::size_t pivot = weights.size();
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (!isZero(weights[i])) {
      pivot = i;
      break;
    }
  }
  assert(pivot < weights.size() && "normalize requires a non-zero weight");

  Weight factor = 0;
  if (config_.normalization == Normalization::UnitPart) {
    // Experimental: divide by the unit part of the leftmost non-zero weight
    // only.  eta = pivot / canonicalAssociate(pivot) is a D[omega] unit, so
    // every weight stays dyadic and the pivot becomes its canonical
    // associate; non-unit content is left in place (not canonical across
    // scalar multiples — see the header).
    const QOmega pivotValue = value(weights[pivot]);
    const QOmega unit = alg::canonicalAssociateUnit(pivotValue); // pivot*unit canonical
    if (!unit.isOne()) {
      for (Weight& w : weights) {
        if (isZero(w)) {
          continue;
        }
        w = intern(value(w) * unit);
      }
    }
    factor = intern(unit.inverse());
  } else if (config_.normalization == Normalization::QOmegaInverse) {
    // Algorithm 2: divide all weights by the leftmost non-zero one; every
    // non-zero Q[omega] value has an exact inverse.
    factor = weights[pivot];
    if (!isOne(factor)) {
      const QOmega& inverse = value(inverseOf(factor));
      for (std::size_t i = 0; i < weights.size(); ++i) {
        if (isZero(weights[i])) {
          continue;
        }
        weights[i] = i == pivot ? one() : intern(value(weights[i]) * inverse);
      }
    }
  } else {
    // Algorithm 3: determine a GCD of all weights in D[omega], then adjust it
    // by a unit so the leftmost non-zero weight becomes the canonical
    // associate of (leftmost / gcd) — properties (a)-(c) of Section IV-B.
    std::vector<QOmega> values;
    values.reserve(weights.size());
    for (const Weight w : weights) {
      values.push_back(value(w));
    }
    const ZOmega g = alg::gcdDyadic(values);
    assert(!g.isZero());
    const QOmega leftmost = values[pivot];
    const QOmega quotient = leftmost / QOmega{g};
    const ZOmega canonical = alg::canonicalAssociate(quotient);
    // eta = leftmost / canonical: dividing by eta maps the leftmost weight to
    // its canonical associate and keeps every weight inside D[omega].
    const QOmega eta = leftmost / QOmega{canonical};
    factor = intern(eta);
    if (!eta.isOne()) {
      const QOmega& etaInverse = value(inverseOf(factor));
      for (Weight& w : weights) {
        if (isZero(w)) {
          continue;
        }
        const QOmega updated = value(w) * etaInverse;
        assert(updated.isDyadic());
        w = intern(updated);
      }
    }
  }

  std::uint64_t trivial = 0;
  for (const Weight w : weights) {
    if (isZero(w) || isOne(w)) {
      ++trivial;
    }
  }
  // Relaxed load+store: serial-identical codegen, lossy-but-race-free under
  // concurrent normalization (telemetry only — never a figure value column).
  weightsProduced_.store(weightsProduced_.load(std::memory_order_relaxed) + weights.size(),
                         std::memory_order_relaxed);
  trivialWeightsProduced_.store(trivialWeightsProduced_.load(std::memory_order_relaxed) + trivial,
                                std::memory_order_relaxed);
  return factor;
}

std::string AlgebraicSystem::describe() const {
  switch (config_.normalization) {
  case Normalization::QOmegaInverse:
    return "algebraic(Q[w]-inverse)";
  case Normalization::GcdDOmega:
    return "algebraic(D[w]-gcd)";
  case Normalization::UnitPart:
    return "algebraic(unit-part)";
  }
  return "algebraic(?)";
}

} // namespace qadd::dd
