/// \file memory_manager.hpp
/// Chunked arena allocator for DD nodes.  Nodes are handed out from
/// geometrically growing chunks, so addresses are stable for the lifetime of
/// the manager (the unique table and the operation caches key on raw node
/// pointers), and freed nodes are recycled through an intrusive free list
/// threaded through Node::next — the same link the unique table uses for its
/// chains, which a freed node is by definition no longer part of.
///
/// This replaces the former per-node-type std::deque pools: one template,
/// both node arities, no per-element deque bookkeeping, and O(1)
/// allocate/free with zero heap traffic outside chunk growth.
///
/// Concurrent mode (setConcurrent): the parallel fork-join kernels allocate
/// nodes from every worker, so each participating thread owns a *slot* (the
/// external caller is slot 0, pool worker i is slot i+1 — exec::workerSlot())
/// holding a private bump span plus a private free-list cache.  Slots refill
/// in batches of kSpanSize nodes from the shared chunks / shared free list
/// under one mutex, so the per-allocation fast path touches only slot-local
/// state — contention is one mutex acquisition per kSpanSize allocations.
/// Nodes are only ever *freed* at quiescent points (the GC sweep is
/// stop-the-world), so free() needs no concurrent path.  The serial get()
/// and free() are byte-for-byte the pre-concurrency behavior: LIFO free-list
/// reuse, bump allocation, identical chunk growth.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

namespace qadd::dd {

template <class NodeT> class MemoryManager {
public:
  static constexpr std::size_t kDefaultInitialChunkSize = 2048;
  /// Chunks grow by 3/2 — large enough to amortize, small enough not to
  /// overshoot the working set by more than 50%.
  static constexpr std::size_t kGrowthNumerator = 3;
  static constexpr std::size_t kGrowthDenominator = 2;
  /// Nodes handed to a worker slot per shared-state refill.
  static constexpr std::size_t kSpanSize = 256;

  explicit MemoryManager(std::size_t initialChunkSize = kDefaultInitialChunkSize)
      : nextChunkSize_(initialChunkSize == 0 ? 1 : initialChunkSize) {}

  MemoryManager(const MemoryManager&) = delete;
  MemoryManager& operator=(const MemoryManager&) = delete;

  /// Hand out a node: from the free list if one is available (its previous
  /// contents are stale — the caller reinitializes every field), otherwise
  /// bump-allocated from the current chunk.  Serial path only.
  [[nodiscard]] NodeT* get() {
    if (freeList_ != nullptr) {
      NodeT* node = freeList_;
      freeList_ = node->next;
      node->next = nullptr;
      freeCount_.store(freeCount() - 1, std::memory_order_relaxed);
      return node;
    }
    if (chunkUsed_ == chunkCapacity_) {
      grow();
    }
    bumpAllocated_.store(bumpAllocated() + 1, std::memory_order_relaxed);
    return &chunks_.back()[chunkUsed_++];
  }

  /// Concurrent-mode allocation from the calling thread's slot.  The caller
  /// passes its exec::workerSlot(); distinct concurrent callers always carry
  /// distinct slots (see exec/thread_pool.hpp).
  [[nodiscard]] NodeT* get(std::size_t slot) {
    assert(slot < slotCount_ && "worker slot outside the configured pool");
    Slot& local = slots_[slot];
    if (local.cachedFree != nullptr) {
      NodeT* node = local.cachedFree;
      local.cachedFree = node->next;
      node->next = nullptr;
      local.takeReserved();
      return node;
    }
    if (local.spanNext == local.spanEnd) {
      refill(local);
      if (local.cachedFree != nullptr) {
        NodeT* node = local.cachedFree;
        local.cachedFree = node->next;
        node->next = nullptr;
        local.takeReserved();
        return node;
      }
    }
    local.takeReserved();
    return local.spanNext++;
  }

  /// Return a node to the free list.  The node must have come from get() and
  /// must no longer be referenced anywhere.  Quiescent-point only (GC sweep).
  void free(NodeT* node) {
    assert(node != nullptr);
    node->next = freeList_;
    freeList_ = node;
    freeCount_.store(freeCount() + 1, std::memory_order_relaxed);
  }

  /// Configure `workerSlots + 1` allocation slots (slot 0 is the external
  /// caller thread).  Quiescent-point only; `0` returns to pure serial mode
  /// (already-carved spans stay owned by their slots and are still consumed
  /// by concurrent get(slot) calls if mode is re-enabled later).
  void setConcurrent(std::size_t workerSlots) {
    if (workerSlots == 0) {
      return; // serial get() keeps working regardless; nothing to size
    }
    const std::size_t wanted = workerSlots + 1;
    if (wanted > slotCount_) {
      auto grown = std::make_unique<Slot[]>(wanted);
      for (std::size_t i = 0; i < slotCount_; ++i) {
        grown[i] = slots_[i];
      }
      slots_ = std::move(grown);
      slotCount_ = wanted;
    }
  }

  /// Nodes currently handed out (allocated and not freed).  Exact in both
  /// modes: nodes a slot has reserved (claimed span remainder + free-list
  /// cache) but not yet handed out are subtracted back out, so the gauge is
  /// byte-identical to a serial run at every quiescent point — `peaknodes`
  /// is a figure value column and must not move with worker count.
  [[nodiscard]] std::size_t inUse() const {
    std::size_t reserved = 0;
    for (std::size_t i = 0; i < slotCount_; ++i) {
      reserved += slots_[i].reservedCount();
    }
    return bumpAllocated() - freeCount() - reserved;
  }
  /// Nodes waiting on the shared free list.
  [[nodiscard]] std::size_t available() const { return freeCount(); }
  /// Nodes ever bump-allocated from chunks (freed or not).
  [[nodiscard]] std::size_t allocatedTotal() const { return bumpAllocated(); }
  /// Number of chunks backing the arena.
  [[nodiscard]] std::size_t chunkCount() const { return chunks_.size(); }
  /// Total arena capacity in bytes (all chunks, used or not) — the memory
  /// footprint gauge of the timeline sampler.  Safe to read concurrently.
  [[nodiscard]] std::size_t arenaBytes() const {
    return capacityTotal_.load(std::memory_order_relaxed) * sizeof(NodeT);
  }

private:
  /// Per-thread allocation state; padded so two slots never share a line.
  struct alignas(64) Slot {
    NodeT* spanNext = nullptr;
    NodeT* spanEnd = nullptr;
    NodeT* cachedFree = nullptr; ///< batch popped from the shared free list
    /// Nodes this slot holds but has not handed out yet (span remainder +
    /// cachedFree length).  Written only by the owning thread; other threads
    /// read it through an atomic_ref when summing inUse(), so the plain
    /// member stays copyable for setConcurrent's quiescent regrow.
    std::size_t reserved = 0;

    void takeReserved() {
      std::atomic_ref<std::size_t> ref(reserved);
      ref.store(ref.load(std::memory_order_relaxed) - 1, std::memory_order_relaxed);
    }
    void addReserved(std::size_t count) {
      std::atomic_ref<std::size_t> ref(reserved);
      ref.store(ref.load(std::memory_order_relaxed) + count, std::memory_order_relaxed);
    }
    [[nodiscard]] std::size_t reservedCount() const {
      return std::atomic_ref<const std::size_t>(reserved).load(std::memory_order_relaxed);
    }
  };

  void grow() {
    chunks_.push_back(std::make_unique<NodeT[]>(nextChunkSize_));
    chunkCapacity_ = nextChunkSize_;
    capacityTotal_.store(capacityTotal_.load(std::memory_order_relaxed) + nextChunkSize_,
                         std::memory_order_relaxed);
    chunkUsed_ = 0;
    nextChunkSize_ = nextChunkSize_ * kGrowthNumerator / kGrowthDenominator;
  }

  /// Grab the next batch of nodes for `local` from the shared state.  Lock
  /// order: callers may hold a unique-table stripe mutex; nothing is locked
  /// beyond mutex_ here, so stripe -> refill never inverts.
  void refill(Slot& local) {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Recycle GC'd nodes first, like the serial path does.
    std::size_t taken = 0;
    while (freeList_ != nullptr && taken < kSpanSize) {
      NodeT* node = freeList_;
      freeList_ = node->next;
      node->next = local.cachedFree;
      local.cachedFree = node;
      ++taken;
    }
    if (taken != 0) {
      freeCount_.store(freeCount() - taken, std::memory_order_relaxed);
      local.addReserved(taken);
      return;
    }
    if (chunkUsed_ == chunkCapacity_) {
      grow();
    }
    const std::size_t count = std::min(kSpanSize, chunkCapacity_ - chunkUsed_);
    local.spanNext = &chunks_.back()[chunkUsed_];
    local.spanEnd = local.spanNext + count;
    chunkUsed_ += count;
    bumpAllocated_.store(bumpAllocated() + count, std::memory_order_relaxed);
    local.addReserved(count);
  }

  [[nodiscard]] std::size_t freeCount() const {
    return freeCount_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t bumpAllocated() const {
    return bumpAllocated_.load(std::memory_order_relaxed);
  }

  std::vector<std::unique_ptr<NodeT[]>> chunks_;
  std::size_t chunkUsed_ = 0;     ///< bump index into the current chunk
  std::size_t chunkCapacity_ = 0; ///< size of the current chunk
  std::atomic<std::size_t> capacityTotal_{0}; ///< summed size of all chunks
  std::size_t nextChunkSize_;
  NodeT* freeList_ = nullptr;
  std::atomic<std::size_t> freeCount_{0};
  std::atomic<std::size_t> bumpAllocated_{0};
  std::mutex mutex_;                ///< guards shared refills in concurrent mode
  std::unique_ptr<Slot[]> slots_;   ///< per-thread spans (concurrent mode)
  std::size_t slotCount_ = 0;
};

} // namespace qadd::dd
