/// \file memory_manager.hpp
/// Chunked arena allocator for DD nodes.  Nodes are handed out from
/// geometrically growing chunks, so addresses are stable for the lifetime of
/// the manager (the unique table and the operation caches key on raw node
/// pointers), and freed nodes are recycled through an intrusive free list
/// threaded through Node::next — the same link the unique table uses for its
/// chains, which a freed node is by definition no longer part of.
///
/// This replaces the former per-node-type std::deque pools: one template,
/// both node arities, no per-element deque bookkeeping, and O(1)
/// allocate/free with zero heap traffic outside chunk growth.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <vector>

namespace qadd::dd {

template <class NodeT> class MemoryManager {
public:
  static constexpr std::size_t kDefaultInitialChunkSize = 2048;
  /// Chunks grow by 3/2 — large enough to amortize, small enough not to
  /// overshoot the working set by more than 50%.
  static constexpr std::size_t kGrowthNumerator = 3;
  static constexpr std::size_t kGrowthDenominator = 2;

  explicit MemoryManager(std::size_t initialChunkSize = kDefaultInitialChunkSize)
      : nextChunkSize_(initialChunkSize == 0 ? 1 : initialChunkSize) {}

  MemoryManager(const MemoryManager&) = delete;
  MemoryManager& operator=(const MemoryManager&) = delete;

  /// Hand out a node: from the free list if one is available (its previous
  /// contents are stale — the caller reinitializes every field), otherwise
  /// bump-allocated from the current chunk.
  [[nodiscard]] NodeT* get() {
    if (freeList_ != nullptr) {
      NodeT* node = freeList_;
      freeList_ = node->next;
      node->next = nullptr;
      --freeCount_;
      return node;
    }
    if (chunkUsed_ == chunkCapacity_) {
      grow();
    }
    ++bumpAllocated_;
    return &chunks_.back()[chunkUsed_++];
  }

  /// Return a node to the free list.  The node must have come from get() and
  /// must no longer be referenced anywhere.
  void free(NodeT* node) {
    assert(node != nullptr);
    node->next = freeList_;
    freeList_ = node;
    ++freeCount_;
  }

  /// Nodes currently handed out (allocated and not freed).
  [[nodiscard]] std::size_t inUse() const { return bumpAllocated_ - freeCount_; }
  /// Nodes waiting on the free list.
  [[nodiscard]] std::size_t available() const { return freeCount_; }
  /// Nodes ever bump-allocated from chunks (freed or not).
  [[nodiscard]] std::size_t allocatedTotal() const { return bumpAllocated_; }
  /// Number of chunks backing the arena.
  [[nodiscard]] std::size_t chunkCount() const { return chunks_.size(); }
  /// Total arena capacity in bytes (all chunks, used or not) — the memory
  /// footprint gauge of the timeline sampler.
  [[nodiscard]] std::size_t arenaBytes() const { return capacityTotal_ * sizeof(NodeT); }

private:
  void grow() {
    chunks_.push_back(std::make_unique<NodeT[]>(nextChunkSize_));
    chunkCapacity_ = nextChunkSize_;
    capacityTotal_ += nextChunkSize_;
    chunkUsed_ = 0;
    nextChunkSize_ = nextChunkSize_ * kGrowthNumerator / kGrowthDenominator;
  }

  std::vector<std::unique_ptr<NodeT[]>> chunks_;
  std::size_t chunkUsed_ = 0;     ///< bump index into the current chunk
  std::size_t chunkCapacity_ = 0; ///< size of the current chunk
  std::size_t capacityTotal_ = 0; ///< summed size of all chunks
  std::size_t nextChunkSize_;
  NodeT* freeList_ = nullptr;
  std::size_t freeCount_ = 0;
  std::size_t bumpAllocated_ = 0;
};

} // namespace qadd::dd
