/// \file dd_node.hpp
/// The unified edge/node templates of the QMDD core.  A `Node<Weight, N>` has
/// N weighted successor edges (N = 2 for state vectors, N = 4 for unitary
/// matrices); an `Edge<Node, Weight>` is a (node pointer, weight) pair where
/// node == nullptr denotes the terminal.  Writing both arities through one
/// template lets the package implement addition, multiplication, Kronecker
/// product, the GC sweep and node counting once, instantiated per arity.
///
/// Nodes carry four pieces of intrusive bookkeeping so that the storage
/// layers need no auxiliary maps:
///  - `next`: the unique-table chain link (and, for freed nodes, the
///    memory-manager free-list link);
///  - `ref`: the reference count (one per parent edge plus external
///    incRef/decRef references);
///  - `seq`: the package's insert serial, a heap-layout-independent stand-in
///    for address order wherever a total order over nodes is needed
///    (add-operand canonicalization);
///  - `visit`: a visit-epoch mark enabling allocation-free traversals
///    (node counting, export) — a node is "seen" iff its mark equals the
///    package's current traversal epoch.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace qadd::dd {

/// Variable index; 0 is the topmost qubit (root level), as in the paper.
using Qubit = std::uint32_t;

/// Weighted edge into a DD.  node == nullptr means the edge goes to the
/// terminal.
///
/// Skip-level edges: `var` is the level the edge *enters* (the variable the
/// edge's context expects next).  For vector edges and for materialized
/// matrix edges, var equals node->var.  A *matrix* edge whose var lies above
/// its node's variable (var < node->var; level 0 is the top) denotes an
/// implicit identity on every skipped level: the represented operator is
/// I ⊗ ... ⊗ I ⊗ M over [var, node->var) ⊗ [node->var, ...).  Two canonical
/// special cases close the invariant:
///  - a zero edge is always {nullptr, 0, var = 0};
///  - a non-zero *terminal* matrix edge {nullptr, w, var = 0} denotes w times
///    the identity on every level remaining in its context (a plain scalar
///    when the context has already reached the bottom) — its var is
///    meaningless and canonically 0.
/// Package::makeNode enforces the canonical var on every stored child edge
/// (entering level of a child of a level-k node is k+1 by definition), so the
/// skip information itself lives in the *difference* between the edge's
/// entering level and its node's variable.
template <class NodeT, class WeightT> struct Edge {
  using Node = NodeT;
  using Weight = WeightT;

  NodeT* node = nullptr;
  WeightT w{};
  Qubit var = 0; ///< entering level (== node->var unless the edge skips)

  [[nodiscard]] bool isTerminal() const { return node == nullptr; }
  friend bool operator==(const Edge&, const Edge&) = default;
};

/// DD node with N weighted successors.
template <class WeightT, std::size_t N> struct Node {
  using Weight = WeightT;
  using EdgeT = Edge<Node, WeightT>;
  static constexpr std::size_t kBranching = N;

  std::array<EdgeT, N> e;
  Node* next = nullptr;            ///< unique-table chain / free-list link
  Qubit var = 0;
  std::uint32_t ref = 0;
  std::uint64_t seq = 0;           ///< per-package insert serial (stable operand order)
  mutable std::uint64_t visit = 0; ///< visit-epoch mark (traversal bookkeeping)
};

namespace detail {

/// Finalizer of splitmix64 / MurmurHash3: full-avalanche 64-bit mixing.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33U;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33U;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33U;
  return x;
}

/// Fold `value` into the running hash `h`.
[[nodiscard]] constexpr std::uint64_t hashCombine(std::uint64_t h, std::uint64_t value) noexcept {
  return mix64(h ^ (value + 0x9e3779b97f4a7c15ULL + (h << 6U) + (h >> 2U)));
}

/// Pointers are arena addresses with identical low alignment bits; shift
/// them out before mixing.
[[nodiscard]] inline std::uint64_t pointerBits(const void* p) noexcept {
  return reinterpret_cast<std::uintptr_t>(p) >> 3U;
}

} // namespace detail

/// Key memoizing a binary operation over interned weight handles — the
/// weight-op caches both weight systems layer over their intern pools.
/// Commutative operations should order the operands (min, max) before
/// building the key so (a, b) and (b, a) share a slot.
struct WeightPairKey {
  std::uint32_t a;
  std::uint32_t b;
  friend bool operator==(const WeightPairKey&, const WeightPairKey&) = default;
  [[nodiscard]] std::uint64_t hash() const noexcept {
    return detail::mix64((static_cast<std::uint64_t>(a) << 32U) | b);
  }
};

/// Content hash of a prospective node: its variable plus each child's
/// (pointer, weight, entering level) triple.  Weights must be integral
/// handles (both weight systems intern their values to std::uint32_t refs).
/// The child var is folded into the pointer word (arena addresses never
/// reach the high bits) so skip-level edges hash as the canonical content
/// the unique table's operator== compares — at zero extra mixing cost.
template <class EdgeT, std::size_t N>
[[nodiscard]] std::uint64_t hashNodeContents(Qubit var, const std::array<EdgeT, N>& children) noexcept {
  std::uint64_t h = detail::mix64(var);
  for (const EdgeT& child : children) {
    h = detail::hashCombine(h, detail::pointerBits(child.node) ^
                                   (static_cast<std::uint64_t>(child.var) << 48U));
    h = detail::hashCombine(h, static_cast<std::uint64_t>(child.w));
  }
  return h;
}

} // namespace qadd::dd
