/// \file approximation.hpp
/// Vocabulary of fidelity-bounded DD state approximation (per *Approximation
/// of Quantum States Using Decision Diagrams*, arXiv 2002.04904): an
/// ApproxSpec pairs a fidelity budget — the total |amplitude|^2 mass the
/// pruner may remove — with a policy saying when Package::prune runs.  The
/// spec is the one approximation knob every layer speaks: eval::RunSpec
/// embeds it per sweep point, qc::Simulator executes it, the figure drivers
/// map --approx-fidelity/--approx-policy onto it, and qadd_serve fixes it per
/// session at open time (docs/APPROXIMATION.md).
#pragma once

#include <optional>
#include <string_view>

namespace qadd::dd {

/// When the simulator prunes the state.
enum class ApproxPolicy {
  /// No approximation: the run is exact in structure (the pre-RunSpec
  /// behaviour of every sweep point).
  None,
  /// One prune after the final gate, spending the whole budget at once.
  OneShot,
  /// Prune after every gate, each time spending an equal share of whatever
  /// budget is still left over the remaining gates (unspent share rolls
  /// forward), with cumulative fidelity tracked on the fly.
  PerGate,
};

/// Fidelity-bounded approximation request.  `budget` is 1 - targetFidelity:
/// pruning removes subtrees whose summed contribution stays <= budget, so the
/// state after pruning satisfies fidelity >= 1 - budget against the state
/// before (the removed mass is an upper bound on the fidelity loss).
struct ApproxSpec {
  double budget = 0.0;
  ApproxPolicy policy = ApproxPolicy::None;

  [[nodiscard]] bool active() const { return policy != ApproxPolicy::None && budget > 0.0; }
  friend bool operator==(const ApproxSpec&, const ApproxSpec&) = default;
};

/// Wire/CLI name of a policy ("none", "oneshot", "pergate").
[[nodiscard]] constexpr const char* approxPolicyName(ApproxPolicy policy) {
  switch (policy) {
  case ApproxPolicy::None:
    return "none";
  case ApproxPolicy::OneShot:
    return "oneshot";
  case ApproxPolicy::PerGate:
    return "pergate";
  }
  return "none";
}

/// Inverse of approxPolicyName; nullopt on anything else.
[[nodiscard]] constexpr std::optional<ApproxPolicy> parseApproxPolicy(std::string_view name) {
  if (name == "none") {
    return ApproxPolicy::None;
  }
  if (name == "oneshot") {
    return ApproxPolicy::OneShot;
  }
  if (name == "pergate") {
    return ApproxPolicy::PerGate;
  }
  return std::nullopt;
}

} // namespace qadd::dd
