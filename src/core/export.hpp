/// \file export.hpp
/// Inspection helpers for QMDDs: Graphviz DOT export (in the style of the
/// paper's Fig. 1c, with weighted edges and zero stubs) and dense
/// reconstruction of the represented vector/matrix for debugging and tests.
#pragma once

#include "core/package.hpp"
#include "linalg/dense.hpp"

#include <ostream>
#include <sstream>
#include <string>
#include <unordered_map>

namespace qadd::dd {

namespace detail {

template <class System, class Node>
void dotNodes(const Package<System>& package, const Node* node,
              std::unordered_map<const Node*, std::size_t>& ids, std::ostream& os) {
  if (node == nullptr || ids.contains(node)) {
    return;
  }
  const std::size_t id = ids.size();
  ids.emplace(node, id);
  os << "  n" << id << " [label=\"q" << node->var << "\"];\n";
  for (std::size_t i = 0; i < node->e.size(); ++i) {
    const auto& child = node->e[i];
    if (package.system().isZero(child.w)) {
      // Zero stub, drawn as a point (like the stubs in the paper's figures).
      os << "  z" << id << "_" << i << " [shape=point];\n";
      os << "  n" << id << " -> z" << id << "_" << i << " [label=\"" << i << "\"];\n";
      continue;
    }
    dotNodes(package, child.node, ids, os);
    std::ostringstream weight;
    const auto z = package.system().toComplex(child.w);
    if (package.system().isOne(child.w)) {
      weight << "";
    } else {
      weight << z.real() << (z.imag() < 0 ? "" : "+") << z.imag() << "i";
    }
    // Skip-level edge: implicit identity on the levels between parent and
    // child (matrix DDs only; vector DDs are quasi-reduced so skip == 0).
    if (child.node != nullptr && child.node->var > node->var + 1) {
      weight << " I^" << (child.node->var - node->var - 1);
    }
    if (child.node == nullptr) {
      os << "  t [shape=box,label=\"1\"];\n";
      os << "  n" << id << " -> t [label=\"" << i << " " << weight.str() << "\"];\n";
    } else {
      os << "  n" << id << " -> n" << ids.at(child.node) << " [label=\"" << i << " "
         << weight.str() << "\"];\n";
    }
  }
}

} // namespace detail

/// Graphviz DOT text for a vector or matrix DD.
template <class System, class Edge>
[[nodiscard]] std::string toDot(const Package<System>& package, const Edge& root) {
  std::ostringstream os;
  os << "digraph qmdd {\n  node [shape=circle];\n";
  const auto z = package.system().toComplex(root.w);
  os << "  root [shape=none,label=\"" << z.real() << (z.imag() < 0 ? "" : "+") << z.imag()
     << "i\"];\n";
  std::unordered_map<const std::remove_pointer_t<decltype(root.node)>*, std::size_t> ids;
  detail::dotNodes(package, root.node, ids, os);
  if (root.node != nullptr) {
    if (root.node->var > root.var) {
      os << "  root -> n" << ids.at(root.node) << " [label=\"I^" << (root.node->var - root.var)
         << "\"];\n";
    } else {
      os << "  root -> n" << ids.at(root.node) << ";\n";
    }
  } else {
    os << "  t [shape=box,label=\"1\"];\n  root -> t;\n";
  }
  os << "}\n";
  return os.str();
}

/// Dense state vector represented by a vector DD (2^n amplitudes).
template <class System>
[[nodiscard]] la::Vector toDenseVector(const Package<System>& package,
                                       const typename Package<System>::VEdge& root) {
  return la::Vector{package.amplitudes(root)};
}

/// Dense matrix represented by a matrix DD (for small qubit counts; used by
/// the tests to compare against the linalg reference).
template <class System>
[[nodiscard]] la::Matrix toDenseMatrix(const Package<System>& package,
                                       const typename Package<System>::MEdge& root) {
  const Qubit nqubits = package.qubits();
  const std::size_t dimension = std::size_t{1} << nqubits;
  la::Matrix result(dimension);
  // Level-aware walk: `level` is the variable the current context enters, so
  // a node whose var lies below it (or the terminal reached early) is an
  // implicit identity on the skipped levels — expanded here as a diagonal
  // block of copies.
  const std::function<void(const typename Package<System>::MNode*, std::complex<double>,
                           std::size_t, std::size_t, Qubit)>
      walk = [&](const auto* node, std::complex<double> acc, std::size_t row, std::size_t col,
                 Qubit level) {
        if (acc == std::complex<double>{}) {
          return;
        }
        if (node == nullptr) {
          // w · identity over the remaining levels (a plain scalar at the
          // bottom).
          const std::size_t size = std::size_t{1} << (nqubits - level);
          for (std::size_t k = 0; k < size; ++k) {
            result.at(row + k, col + k) += acc;
          }
          return;
        }
        if (node->var > level) {
          // Skipped level: identity ⊗ (rest) — recurse into both diagonal
          // quadrants.
          const std::size_t half = std::size_t{1} << (nqubits - level - 1);
          walk(node, acc, row, col, level + 1);
          walk(node, acc, row + half, col + half, level + 1);
          return;
        }
        const std::size_t half = std::size_t{1} << (nqubits - level - 1);
        for (std::size_t i = 0; i < 4; ++i) {
          const auto& child = node->e[i];
          if (package.system().isZero(child.w)) {
            continue;
          }
          const std::size_t r = row + ((i >> 1) != 0 ? half : 0);
          const std::size_t c = col + ((i & 1) != 0 ? half : 0);
          walk(child.node, acc * package.system().toComplex(child.w), r, c, level + 1);
        }
      };
  walk(root.node, package.system().toComplex(root.w), 0, 0, root.var);
  return result;
}

} // namespace qadd::dd
