/// \file export.hpp
/// Inspection helpers for QMDDs: Graphviz DOT export (in the style of the
/// paper's Fig. 1c, with weighted edges and zero stubs) and dense
/// reconstruction of the represented vector/matrix for debugging and tests.
#pragma once

#include "core/package.hpp"
#include "linalg/dense.hpp"

#include <ostream>
#include <sstream>
#include <string>
#include <unordered_map>

namespace qadd::dd {

namespace detail {

template <class System, class Node>
void dotNodes(const Package<System>& package, const Node* node,
              std::unordered_map<const Node*, std::size_t>& ids, std::ostream& os) {
  if (node == nullptr || ids.contains(node)) {
    return;
  }
  const std::size_t id = ids.size();
  ids.emplace(node, id);
  os << "  n" << id << " [label=\"q" << node->var << "\"];\n";
  for (std::size_t i = 0; i < node->e.size(); ++i) {
    const auto& child = node->e[i];
    if (package.system().isZero(child.w)) {
      // Zero stub, drawn as a point (like the stubs in the paper's figures).
      os << "  z" << id << "_" << i << " [shape=point];\n";
      os << "  n" << id << " -> z" << id << "_" << i << " [label=\"" << i << "\"];\n";
      continue;
    }
    dotNodes(package, child.node, ids, os);
    std::ostringstream weight;
    const auto z = package.system().toComplex(child.w);
    if (package.system().isOne(child.w)) {
      weight << "";
    } else {
      weight << z.real() << (z.imag() < 0 ? "" : "+") << z.imag() << "i";
    }
    if (child.node == nullptr) {
      os << "  t [shape=box,label=\"1\"];\n";
      os << "  n" << id << " -> t [label=\"" << i << " " << weight.str() << "\"];\n";
    } else {
      os << "  n" << id << " -> n" << ids.at(child.node) << " [label=\"" << i << " "
         << weight.str() << "\"];\n";
    }
  }
}

} // namespace detail

/// Graphviz DOT text for a vector or matrix DD.
template <class System, class Edge>
[[nodiscard]] std::string toDot(const Package<System>& package, const Edge& root) {
  std::ostringstream os;
  os << "digraph qmdd {\n  node [shape=circle];\n";
  const auto z = package.system().toComplex(root.w);
  os << "  root [shape=none,label=\"" << z.real() << (z.imag() < 0 ? "" : "+") << z.imag()
     << "i\"];\n";
  std::unordered_map<const std::remove_pointer_t<decltype(root.node)>*, std::size_t> ids;
  detail::dotNodes(package, root.node, ids, os);
  if (root.node != nullptr) {
    os << "  root -> n" << ids.at(root.node) << ";\n";
  } else {
    os << "  t [shape=box,label=\"1\"];\n  root -> t;\n";
  }
  os << "}\n";
  return os.str();
}

/// Dense state vector represented by a vector DD (2^n amplitudes).
template <class System>
[[nodiscard]] la::Vector toDenseVector(const Package<System>& package,
                                       const typename Package<System>::VEdge& root) {
  return la::Vector{package.amplitudes(root)};
}

/// Dense matrix represented by a matrix DD (for small qubit counts; used by
/// the tests to compare against the linalg reference).
template <class System>
[[nodiscard]] la::Matrix toDenseMatrix(const Package<System>& package,
                                       const typename Package<System>::MEdge& root) {
  const std::size_t dimension = std::size_t{1} << package.qubits();
  la::Matrix result(dimension);
  const std::function<void(const typename Package<System>::MNode*, std::complex<double>,
                           std::size_t, std::size_t, std::size_t)>
      walk = [&](const auto* node, std::complex<double> acc, std::size_t row, std::size_t col,
                 std::size_t half) {
        if (acc == std::complex<double>{}) {
          return;
        }
        if (node == nullptr) {
          result.at(row, col) += acc;
          return;
        }
        for (std::size_t i = 0; i < 4; ++i) {
          const auto& child = node->e[i];
          if (package.system().isZero(child.w)) {
            continue;
          }
          const std::size_t r = row + ((i >> 1) != 0 ? half : 0);
          const std::size_t c = col + ((i & 1) != 0 ? half : 0);
          walk(child.node, acc * package.system().toComplex(child.w), r, c, half / 2);
        }
      };
  walk(root.node, package.system().toComplex(root.w), 0, 0, dimension / 2);
  return result;
}

} // namespace qadd::dd
