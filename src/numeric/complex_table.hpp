/// \file complex_table.hpp
/// Interning table for floating-point complex edge weights with a
/// configurable tolerance epsilon — the data structure at the heart of the
/// accuracy/compactness trade-off the paper analyses (Section III).
///
/// Two values whose components differ by at most epsilon are unified to the
/// same table entry (the first one inserted wins).  epsilon == 0 degrades to
/// bit-exact interning, which maximizes precision but misses redundancies;
/// large epsilon merges genuinely different amplitudes and loses information.
///
/// Complexity note: in tolerance mode the stored entries are pairwise more
/// than epsilon apart (any closer candidate would have been unified), so a
/// spatial hash with cell size epsilon has O(1) occupancy per cell and
/// lookups are O(1).  Tolerances below ~2^-40 are finer than the spacing of
/// the doubles occurring in practice; they are served by bit-exact hashing
/// instead (a dense sub-epsilon grid would degenerate to linear scans).
///
/// Templated on the floating-point type (double is the baseline; long
/// double backs the precision-scaling experiment).
#pragma once

#include "core/stable_vector.hpp"
#include "numeric/complex_value.hpp"
#include "obs/stats.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace qadd::num {

/// Handle to an interned complex value (index into the table).
using ComplexRef = std::uint32_t;

template <class FloatT> class BasicComplexTable {
public:
  using Value = BasicComplexValue<FloatT>;

  /// \param epsilon tolerance for unifying values (>= 0).
  explicit BasicComplexTable(FloatT epsilon) : epsilon_(epsilon) {
    if (epsilon < 0 || !std::isfinite(static_cast<double>(epsilon))) {
      throw std::invalid_argument("ComplexTable: epsilon must be finite and >= 0");
    }
    // Below ~2^-40 a tolerance is finer than the spacing of the floats that
    // occur in normalized amplitudes, so the lookup degrades to bit-exact
    // interning (and stays O(1) — see the file comment on bucket density).
    exactMode_ = epsilon_ < kMinCell;
    cell_ = exactMode_ ? kMinCell : epsilon_;
    entries_.push_back(Value::zero()); // kZeroRef
    entries_.push_back(Value::one());  // kOneRef
    if (exactMode_) {
      exact_[bitKeyOf(entries_[0])].push_back(kZeroRef);
      exact_[bitKeyOf(entries_[1])].push_back(kOneRef);
    } else {
      grid_[cellOf(entries_[0])].push_back(kZeroRef);
      grid_[cellOf(entries_[1])].push_back(kOneRef);
    }
  }

  BasicComplexTable(const BasicComplexTable&) = delete;
  BasicComplexTable& operator=(const BasicComplexTable&) = delete;

  /// Enable/disable concurrent interning (quiescent-point only).  Only the
  /// bit-exact mode supports it: concurrent lookups serialize on one mutex
  /// while value(ref) reads stay lock-free (entries_ is a StableVector, so
  /// published refs never move).  Tolerance mode is insertion-order
  /// dependent and must stay serial — the package never requests otherwise.
  void setConcurrent(bool concurrent) {
    assert((!concurrent || exactMode_) && "concurrent interning requires exact mode");
    concurrent_ = concurrent;
  }
  [[nodiscard]] bool concurrent() const { return concurrent_; }

  /// Canonical handle for `value`, unifying within the tolerance.
  [[nodiscard]] ComplexRef lookup(Value value) {
    std::unique_lock<std::mutex> lock(mutex_, std::defer_lock);
    if (concurrent_) {
      lock.lock();
    }
    if (exactMode_) {
      if (epsilon_ > 0) {
        if (Value::approxEqual(value, Value::zero(), epsilon_)) {
          noteUnification(kZeroRef, value);
          return kZeroRef;
        }
        if (Value::approxEqual(value, Value::one(), epsilon_)) {
          noteUnification(kOneRef, value);
          return kOneRef;
        }
      }
      // The bucket key is the double-rounded bit pattern; entries inside a
      // bucket are distinguished by exact FloatT comparison, so extended
      // precision values that differ only below double resolution stay
      // distinct (essential for the precision-scaling experiment).
      auto& bucket = exact_[bitKeyOf(value)];
      for (const ComplexRef ref : bucket) {
        if (entries_[ref] == value) {
          return ref;
        }
      }
      const auto ref = static_cast<ComplexRef>(entries_.size());
      entries_.push_back(value);
      bucket.push_back(ref);
      return ref;
    }
    const CellKey center = cellOf(value);
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        const auto it = grid_.find(CellKey{center.x + dx, center.y + dy});
        if (it == grid_.end()) {
          continue;
        }
        for (const ComplexRef ref : it->second) {
          if (Value::approxEqual(entries_[ref], value, epsilon_)) {
            noteUnification(ref, value);
            return ref;
          }
        }
      }
    }
    const auto ref = static_cast<ComplexRef>(entries_.size());
    entries_.push_back(value);
    grid_[center].push_back(ref);
    return ref;
  }

  [[nodiscard]] Value value(ComplexRef ref) const { return entries_[ref]; }

  [[nodiscard]] ComplexRef zeroRef() const { return kZeroRef; }
  [[nodiscard]] ComplexRef oneRef() const { return kOneRef; }

  [[nodiscard]] FloatT epsilon() const { return epsilon_; }

  /// True iff interning is bit-exact (ε below the float resolution floor):
  /// the ref returned for a given value is then stable over the table's
  /// lifetime, which makes memoizing weight operations behavior-preserving.
  /// In tolerance mode a later lookup of the same value may unify onto an
  /// entry inserted in the meantime, so results are insertion-order
  /// dependent and must not be memoized.
  [[nodiscard]] bool exactMode() const { return exactMode_; }

  /// Number of distinct interned values (a compactness statistic).
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Number of lookups that unified within ε onto an entry that was *not*
  /// bit-identical — the paper's accuracy-loss event: information about the
  /// looked-up value is silently discarded.  Always 0 when telemetry is
  /// compiled out or ε == 0.
  [[nodiscard]] std::uint64_t nearMissUnifications() const {
    return nearMisses_.load(std::memory_order_relaxed);
  }

  /// Histogram of bucket occupancy: result[k] = number of hash buckets
  /// (spatial-grid cells in tolerance mode, bit-pattern buckets in exact
  /// mode) currently holding exactly k entries; k is clamped to the last
  /// bin.  Empty buckets are not represented (result[0] == 0).
  [[nodiscard]] std::vector<std::uint64_t> bucketOccupancyHistogram(std::size_t maxBin = 8) const {
    std::vector<std::uint64_t> histogram(maxBin + 1, 0);
    const auto note = [&](std::size_t occupancy) {
      ++histogram[std::min(occupancy, maxBin)];
    };
    if (exactMode_) {
      for (const auto& [key, bucket] : exact_) {
        note(bucket.size());
      }
    } else {
      for (const auto& [key, bucket] : grid_) {
        note(bucket.size());
      }
    }
    return histogram;
  }

private:
  /// Telemetry hook for a tolerant hit: counts it as a near miss unless the
  /// match was bit-exact.
  void noteUnification(ComplexRef ref, Value value) {
    if constexpr (qadd::obs::kEnabled) {
      if (!(entries_[ref] == value)) {
        nearMisses_.store(nearMisses_.load(std::memory_order_relaxed) + 1,
                          std::memory_order_relaxed);
      }
    } else {
      (void)ref;
      (void)value;
    }
  }

  static constexpr ComplexRef kZeroRef = 0;
  static constexpr ComplexRef kOneRef = 1;
  static constexpr FloatT kMinCell = static_cast<FloatT>(0x1p-40);

  struct CellKey {
    std::int64_t x;
    std::int64_t y;
    friend bool operator==(CellKey, CellKey) = default;
  };
  struct CellKeyHash {
    std::size_t operator()(CellKey key) const noexcept {
      auto h = static_cast<std::size_t>(key.x) * 0x9e3779b97f4a7c15ULL;
      h ^= static_cast<std::size_t>(key.y) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return h;
    }
  };
  struct BitKey {
    std::uint64_t re;
    std::uint64_t im;
    friend bool operator==(BitKey, BitKey) = default;
  };
  struct BitKeyHash {
    std::size_t operator()(BitKey key) const noexcept {
      return key.re * 0x9e3779b97f4a7c15ULL ^ (key.im + (key.re << 7));
    }
  };

  /// Bucket key: bit pattern of the value rounded to double.
  /// -0.0 canonicalizes with +0.0.
  [[nodiscard]] static BitKey bitKeyOf(Value value) {
    const auto bits = [](FloatT component) {
      double canonical = static_cast<double>(component);
      if (canonical == 0.0) {
        canonical = 0.0;
      }
      std::uint64_t pattern = 0;
      std::memcpy(&pattern, &canonical, sizeof(pattern));
      return pattern;
    };
    return {bits(value.re), bits(value.im)};
  }

  [[nodiscard]] CellKey cellOf(Value value) const {
    return {static_cast<std::int64_t>(std::floor(static_cast<double>(value.re / cell_))),
            static_cast<std::int64_t>(std::floor(static_cast<double>(value.im / cell_)))};
  }

  FloatT epsilon_;
  FloatT cell_;            // spatial-hash cell edge length (>= epsilon, > 0)
  bool exactMode_ = false; // epsilon below float resolution: bit-exact interning
  bool concurrent_ = false;
  std::atomic<std::uint64_t> nearMisses_{0};
  std::mutex mutex_; ///< serializes lookup() in concurrent mode
  /// Stable-address entry store: value(ref) is lock-free even while another
  /// thread interns (chunks never move; size_ is a release/acquire fence).
  dd::StableVector<Value> entries_;
  std::unordered_map<CellKey, std::vector<ComplexRef>, CellKeyHash> grid_;
  std::unordered_map<BitKey, std::vector<ComplexRef>, BitKeyHash> exact_;
};

using ComplexTable = BasicComplexTable<double>;

} // namespace qadd::num
