/// \file complex_value.hpp
/// Complex number pairs for the numerical QMDD representation, templated on
/// the floating-point type: `double` is the paper's baseline, `long double`
/// backs the precision-scaling experiment (Section V-A's closing remark that
/// even wider floats never reach perfect accuracy).
#pragma once

#include <cmath>
#include <complex>
#include <cstdint>

namespace qadd::num {

/// A complex number as stored by the numerical (floating-point) QMDD flavor.
template <class FloatT> struct BasicComplexValue {
  FloatT re = 0;
  FloatT im = 0;

  [[nodiscard]] static constexpr BasicComplexValue zero() { return {0, 0}; }
  [[nodiscard]] static constexpr BasicComplexValue one() { return {1, 0}; }

  [[nodiscard]] std::complex<FloatT> toStd() const { return {re, im}; }
  [[nodiscard]] static BasicComplexValue fromStd(std::complex<FloatT> z) {
    return {z.real(), z.imag()};
  }

  [[nodiscard]] FloatT squaredMagnitude() const { return re * re + im * im; }

  friend BasicComplexValue operator+(BasicComplexValue a, BasicComplexValue b) {
    return {a.re + b.re, a.im + b.im};
  }
  friend BasicComplexValue operator-(BasicComplexValue a, BasicComplexValue b) {
    return {a.re - b.re, a.im - b.im};
  }
  friend BasicComplexValue operator*(BasicComplexValue a, BasicComplexValue b) {
    return {a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re};
  }
  friend BasicComplexValue operator/(BasicComplexValue a, BasicComplexValue b) {
    const FloatT d = b.re * b.re + b.im * b.im;
    return {(a.re * b.re + a.im * b.im) / d, (a.im * b.re - a.re * b.im) / d};
  }
  [[nodiscard]] BasicComplexValue conj() const { return {re, -im}; }

  friend bool operator==(BasicComplexValue a, BasicComplexValue b) = default;

  /// The paper's tolerance comparison: per-component distance at most epsilon.
  /// With epsilon == 0 this degenerates to exact equality of the floats.
  [[nodiscard]] static bool approxEqual(BasicComplexValue a, BasicComplexValue b,
                                        FloatT epsilon) {
    return std::abs(a.re - b.re) <= epsilon && std::abs(a.im - b.im) <= epsilon;
  }
};

using ComplexValue = BasicComplexValue<double>;

} // namespace qadd::num
