/// \file compile.hpp
/// Compilation of arbitrary circuits to the Clifford+T gate set — the role
/// the Quipper tool plays in the paper's evaluation (Section V): benchmarks
/// like GSE contain rotations by arbitrary angles that are not contained in
/// D[omega]/Q[omega] and must be approximated by exactly representable
/// circuits before the algebraic QMDD can process them.
#pragma once

#include "qc/circuit.hpp"
#include "synth/solovay_kitaev.hpp"

#include <map>

namespace qadd::synth {

/// Rewrites every parameterized gate of `circuit` into Clifford+T:
///  - Rz / Phase: Solovay-Kitaev approximation (projective, standard for SK);
///  - Rx = H Rz H,  Ry = S H Rz H Sdg (axis conjugation);
///  - singly-controlled parameterized gates: the standard two-CNOT
///    decomposition into uncontrolled rotations, then as above.
/// Clifford+T gates (including multi-controlled X/Z) pass through untouched.
/// Approximations are cached per angle, mirroring how a compiler reuses
/// synthesized rotations.
class CliffordTCompiler {
public:
  explicit CliffordTCompiler(SolovayKitaev::Options options = {5, 2})
      : synthesizer_(options) {}

  [[nodiscard]] qc::Circuit compile(const qc::Circuit& circuit);

  [[nodiscard]] const SolovayKitaev& synthesizer() const { return synthesizer_; }

private:
  void emitRz(qc::Circuit& out, double angle, qc::Qubit target);
  void emitOperation(qc::Circuit& out, const qc::Operation& operation);

  [[nodiscard]] const CliffordTSequence& cachedRz(double angle);

  SolovayKitaev synthesizer_;
  std::map<double, CliffordTSequence> cache_;
};

} // namespace qadd::synth
