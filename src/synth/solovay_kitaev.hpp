/// \file solovay_kitaev.hpp
/// Clifford+T synthesis of arbitrary single-qubit rotations via the
/// Dawson-Nielsen formulation of the Solovay-Kitaev algorithm.
///
/// This module replaces the paper's use of the Quipper compiler (Section V):
/// the GSE benchmark contains rotations by arbitrary angles whose matrix
/// entries are NOT in D[omega]; they must first be approximated by circuits
/// over {H, T} (whose entries are), after which both the numerical and the
/// algebraic QMDD simulate the *same* exactly-representable circuit.
///
/// Approximation is projective (up to global phase), as is standard for
/// Solovay-Kitaev.  The base case is an epsilon-net of canonical <H,T> words
/// T^(k0) (H T^(ki))^m; the recursion improves a level-(n-1) approximation
/// U_{n-1} by synthesizing the residual U U_{n-1}^dagger as a balanced group
/// commutator [V, W].
#pragma once

#include "qc/gates.hpp"
#include "synth/su2.hpp"

#include <cstdint>
#include <vector>

namespace qadd::synth {

/// A Clifford+T word together with the SU(2) element it multiplies out to.
struct CliffordTSequence {
  std::vector<qc::GateKind> gates; // applied left-to-right in circuit order
  SU2 matrix;                      // product, first gate rightmost
};

/// Peephole simplification: cancels H H, folds runs of T/Tdg modulo 8 into
/// {I, T, S, S T, Z, Z T(=S Sdg..), Sdg, Tdg}, iterating to a fixed point.
[[nodiscard]] std::vector<qc::GateKind> simplifySequence(std::vector<qc::GateKind> gates);

class SolovayKitaev {
public:
  struct Options {
    /// Maximum number of H layers in the base epsilon-net words; net size
    /// grows as ~8 * 7^(hLayers-1) * 8.
    int hLayers = 5;
    /// Recursion depth of the Solovay-Kitaev construction.
    int depth = 2;
  };

  SolovayKitaev() : SolovayKitaev(Options{}) {}
  explicit SolovayKitaev(Options options);

  /// Best Clifford+T approximation of `target` at the configured depth.
  [[nodiscard]] CliffordTSequence approximate(const SU2& target) const;

  /// Approximation at an explicit recursion depth (0 = base net only).
  [[nodiscard]] CliffordTSequence approximate(const SU2& target, int depth) const;

  /// Convenience: approximate Rz(angle) (projectively).
  [[nodiscard]] CliffordTSequence approximateRz(double angle) const;

  [[nodiscard]] std::size_t netSize() const { return net_.size(); }
  [[nodiscard]] const Options& options() const { return options_; }

private:
  struct NetEntry {
    SU2 matrix;
    std::vector<std::uint8_t> word; // encoded: 0 = H, 1..7 = T^k
  };

  void buildNet();
  [[nodiscard]] CliffordTSequence baseApproximation(const SU2& target) const;

  /// Balanced group-commutator decomposition: delta ~ V W V^dag W^dag with
  /// V, W rotations by equal angles (Dawson-Nielsen).
  static void groupCommutatorDecompose(const SU2& delta, SU2& v, SU2& w);

  Options options_;
  std::vector<NetEntry> net_;
};

} // namespace qadd::synth
