#include "synth/compile.hpp"

#include <stdexcept>

namespace qadd::synth {

using qc::Circuit;
using qc::GateKind;
using qc::Operation;
using qc::Qubit;

const CliffordTSequence& CliffordTCompiler::cachedRz(double angle) {
  const auto it = cache_.find(angle);
  if (it != cache_.end()) {
    return it->second;
  }
  return cache_.emplace(angle, synthesizer_.approximateRz(angle)).first->second;
}

void CliffordTCompiler::emitRz(Circuit& out, double angle, Qubit target) {
  for (const GateKind kind : cachedRz(angle).gates) {
    out.gate(kind, target);
  }
}

void CliffordTCompiler::emitOperation(Circuit& out, const Operation& operation) {
  if (qc::isCliffordT(operation.kind)) {
    out.append(operation);
    return;
  }
  // Phase(theta) and Rz(theta) coincide projectively; both compile to the
  // same Rz approximation.  Rx/Ry are conjugated onto the z axis.
  if (operation.controls.empty()) {
    switch (operation.kind) {
    case GateKind::Rz:
    case GateKind::Phase:
      emitRz(out, operation.angle, operation.target);
      return;
    case GateKind::Rx:
      out.h(operation.target);
      emitRz(out, operation.angle, operation.target);
      out.h(operation.target);
      return;
    case GateKind::Ry:
      // Ry = Sdg H Rz H S (rotate the z axis onto y).
      out.sdg(operation.target);
      out.h(operation.target);
      emitRz(out, operation.angle, operation.target);
      out.h(operation.target);
      out.s(operation.target);
      return;
    default:
      break;
    }
  }
  if (operation.controls.size() == 1 &&
      (operation.kind == GateKind::Rz || operation.kind == GateKind::Phase)) {
    // Controlled z-rotation via two CNOTs:
    //   cRz(t) = Rz(t/2)_target CX Rz(-t/2)_target CX,
    // and a controlled phase adds Rz(t/2) on the control (projectively).
    const Qubit control = operation.controls.front().qubit;
    if (!operation.controls.front().positive) {
      throw std::invalid_argument("CliffordTCompiler: negative controls on rotations unsupported");
    }
    const Qubit target = operation.target;
    const double half = operation.angle / 2;
    if (operation.kind == GateKind::Phase) {
      emitRz(out, half, control);
    }
    emitRz(out, half, target);
    out.cx(control, target);
    emitRz(out, -half, target);
    out.cx(control, target);
    return;
  }
  throw std::invalid_argument("CliffordTCompiler: unsupported parameterized operation");
}

Circuit CliffordTCompiler::compile(const Circuit& circuit) {
  Circuit out(circuit.qubits(), circuit.name() + "_ct");
  for (const Operation& operation : circuit.operations()) {
    emitOperation(out, operation);
  }
  return out;
}

} // namespace qadd::synth
