#include "synth/reversible.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace qadd::synth {

using qc::Circuit;
using qc::ControlSpec;
using qc::GateKind;
using qc::Qubit;

namespace {

/// X on bit `target` (within the register) controlled on the full pattern of
/// `state` on every other register bit, plus the external controls.  This
/// transposes exactly |state> and |state ^ (1 << target)> (conditioned on the
/// external controls).
void appendPatternControlledX(Circuit& circuit, Qubit offset, Qubit width, std::uint64_t state,
                              unsigned target, const std::vector<ControlSpec>& extraControls) {
  std::vector<ControlSpec> controls = extraControls;
  controls.reserve(extraControls.size() + width - 1);
  for (unsigned bit = 0; bit < width; ++bit) {
    if (bit == target) {
      continue;
    }
    controls.push_back({offset + bit, ((state >> bit) & 1ULL) != 0});
  }
  circuit.controlled(GateKind::X, offset + target, std::move(controls));
}

} // namespace

void appendTransposition(Circuit& circuit, Qubit offset, Qubit width,
                         Transposition transposition,
                         const std::vector<ControlSpec>& extraControls) {
  const std::uint64_t a = transposition.a;
  std::uint64_t b = transposition.b;
  if (a == b) {
    throw std::invalid_argument("appendTransposition: a == b is not a transposition");
  }
  assert(width <= 63 && (a >> width) == 0 && (b >> width) == 0);
  const std::uint64_t difference = a ^ b;
  const auto pivot = static_cast<unsigned>(std::countr_zero(difference));

  // Alignment chain W: walk b to a ^ (1 << pivot) one differing bit at a
  // time.  Each link is itself a transposition of two basis states, so the
  // whole chain is a permutation that is undone exactly by replaying it in
  // reverse.
  std::vector<std::pair<std::uint64_t, unsigned>> chain; // (state before flip, bit)
  for (unsigned bit = pivot + 1; bit < width; ++bit) {
    if (((difference >> bit) & 1ULL) == 0) {
      continue;
    }
    chain.push_back({b, bit});
    appendPatternControlledX(circuit, offset, width, b, bit, extraControls);
    b ^= 1ULL << bit;
  }
  for (unsigned bit = 0; bit < pivot; ++bit) {
    if (((difference >> bit) & 1ULL) == 0) {
      continue;
    }
    chain.push_back({b, bit});
    appendPatternControlledX(circuit, offset, width, b, bit, extraControls);
    b ^= 1ULL << bit;
  }
  assert(b == (a ^ (1ULL << pivot)));

  // The central swap |a> <-> |a ^ (1<<pivot)>.
  appendPatternControlledX(circuit, offset, width, a, pivot, extraControls);

  // Undo the alignment chain.
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    appendPatternControlledX(circuit, offset, width, it->first, it->second, extraControls);
  }
}

void appendInvolution(Circuit& circuit, Qubit offset, Qubit width,
                      const std::vector<Transposition>& pairs,
                      const std::vector<ControlSpec>& extraControls) {
  for (const Transposition& pair : pairs) {
    appendTransposition(circuit, offset, width, pair, extraControls);
  }
}

void appendPermutation(Circuit& circuit, Qubit offset, Qubit width,
                       const std::vector<std::uint64_t>& image,
                       const std::vector<ControlSpec>& extraControls) {
  const std::uint64_t size = 1ULL << width;
  if (image.size() != size) {
    throw std::invalid_argument("appendPermutation: image table size mismatch");
  }
  // Validate bijectivity.
  std::vector<bool> seen(size, false);
  for (const std::uint64_t y : image) {
    if (y >= size || seen[y]) {
      throw std::invalid_argument("appendPermutation: image is not a permutation");
    }
    seen[y] = true;
  }
  // Cycle decomposition: (a1 a2 ... ak) = (a1 ak)(a1 a(k-1))...(a1 a2),
  // with the *rightmost* transposition applied first.  Gates appended to a
  // circuit act in order, so emit (a1 a2) first.
  std::vector<bool> visited(size, false);
  for (std::uint64_t start = 0; start < size; ++start) {
    if (visited[start] || image[start] == start) {
      visited[start] = true;
      continue;
    }
    std::uint64_t current = image[start];
    visited[start] = true;
    while (current != start) {
      visited[current] = true;
      appendTransposition(circuit, offset, width, {start, current}, extraControls);
      current = image[current];
    }
  }
}

std::uint64_t applyInvolution(const std::vector<Transposition>& pairs, std::uint64_t value) {
  for (const Transposition& pair : pairs) {
    if (value == pair.a) {
      return pair.b;
    }
    if (value == pair.b) {
      return pair.a;
    }
  }
  return value;
}

} // namespace qadd::synth
