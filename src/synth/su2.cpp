#include "synth/su2.hpp"

#include <cassert>
#include <cmath>

namespace qadd::synth {

namespace {

/// Canonical projective sign: flip the quaternion so w > 0 (or the first
/// non-zero of x, y, z is positive when w == 0).
void canonicalizeSign(double& w, double& x, double& y, double& z) {
  constexpr double tiny = 1e-15;
  double lead = w;
  if (std::abs(lead) < tiny) {
    lead = std::abs(x) >= tiny ? x : (std::abs(y) >= tiny ? y : z);
  }
  if (lead < 0) {
    w = -w;
    x = -x;
    y = -y;
    z = -z;
  }
}

} // namespace

SU2::SU2(double w, double x, double y, double z) : w_(w), x_(x), y_(y), z_(z) {
  const double n = std::sqrt(w_ * w_ + x_ * x_ + y_ * y_ + z_ * z_);
  assert(n > 0);
  w_ /= n;
  x_ /= n;
  y_ /= n;
  z_ /= n;
  canonicalizeSign(w_, x_, y_, z_);
}

SU2 SU2::fromMatrix(const std::array<std::complex<double>, 4>& m) {
  // Normalize the determinant to 1 (divide by a square root of det), then
  // read off the quaternion from U = [[w - iz, -y - ix], [y - ix, w + iz]].
  const std::complex<double> det = m[0] * m[3] - m[1] * m[2];
  const std::complex<double> phase = std::sqrt(det);
  const std::complex<double> a = m[0] / phase; // w - i z
  const std::complex<double> c = m[2] / phase; // y - i x
  return {a.real(), -c.imag(), c.real(), -a.imag()};
}

SU2 SU2::fromAxisAngle(double nx, double ny, double nz, double angle) {
  const double n = std::sqrt(nx * nx + ny * ny + nz * nz);
  assert(n > 0);
  const double s = std::sin(angle / 2) / n;
  return {std::cos(angle / 2), s * nx, s * ny, s * nz};
}

std::array<std::complex<double>, 4> SU2::toMatrix() const {
  using C = std::complex<double>;
  return {C{w_, -z_}, C{-y_, -x_}, C{y_, -x_}, C{w_, z_}};
}

void SU2::toAxisAngle(double& nx, double& ny, double& nz, double& angle) const {
  const double s = std::sqrt(x_ * x_ + y_ * y_ + z_ * z_);
  angle = 2.0 * std::atan2(s, w_);
  if (s < 1e-15) {
    nx = 0.0;
    ny = 0.0;
    nz = 1.0;
    return;
  }
  nx = x_ / s;
  ny = y_ / s;
  nz = z_ / s;
}

SU2 operator*(const SU2& a, const SU2& b) {
  // Hamilton product; equals the matrix product a.toMatrix() * b.toMatrix()
  // under this file's quaternion convention.
  return {a.w_ * b.w_ - a.x_ * b.x_ - a.y_ * b.y_ - a.z_ * b.z_,
          a.w_ * b.x_ + a.x_ * b.w_ + a.y_ * b.z_ - a.z_ * b.y_,
          a.w_ * b.y_ - a.x_ * b.z_ + a.y_ * b.w_ + a.z_ * b.x_,
          a.w_ * b.z_ + a.x_ * b.y_ - a.y_ * b.x_ + a.z_ * b.w_};
}

double SU2::distance(const SU2& a, const SU2& b) {
  const double dot = std::abs(a.w_ * b.w_ + a.x_ * b.x_ + a.y_ * b.y_ + a.z_ * b.z_);
  return 2.0 * std::sqrt(std::max(0.0, 1.0 - std::min(1.0, dot)));
}

} // namespace qadd::synth
