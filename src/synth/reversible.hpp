/// \file reversible.hpp
/// Reversible-logic synthesis of basis-state permutations into
/// multi-controlled X netlists — the classic QMDD application domain
/// ([16]-[18] in the paper).  Used here to realize the edge-permutations of
/// the Binary-Welded-Tree quantum walk as exactly-representable circuits.
#pragma once

#include "qc/circuit.hpp"

#include <cstdint>
#include <vector>

namespace qadd::synth {

/// A transposition of two computational basis states.
struct Transposition {
  std::uint64_t a;
  std::uint64_t b;
};

/// Append the gates realizing the transposition |a> <-> |b| on the `width`
/// qubits starting at `offset` (other basis states untouched), optionally
/// conditioned on extra controls.
///
/// Construction: align b to differ from a in a single bit by a chain of
/// fully-controlled X gates W, swap with one multi-controlled X, then undo W.
/// Cost: 2 * (hammingDistance - 1) + 1 MCX gates.
void appendTransposition(qc::Circuit& circuit, qc::Qubit offset, qc::Qubit width,
                         Transposition transposition,
                         const std::vector<qc::ControlSpec>& extraControls = {});

/// Append a full involution given as disjoint transpositions (a matching on
/// basis states).  Pairs may be given in any order.
void appendInvolution(qc::Circuit& circuit, qc::Qubit offset, qc::Qubit width,
                      const std::vector<Transposition>& pairs,
                      const std::vector<qc::ControlSpec>& extraControls = {});

/// Apply a permutation given as an image table to a classical basis index
/// (test helper: the circuit built from `pairs` must act like this).
[[nodiscard]] std::uint64_t applyInvolution(const std::vector<Transposition>& pairs,
                                            std::uint64_t value);

/// Append a circuit realizing an arbitrary basis-state permutation given as
/// its image table (`image[x]` = where |x> goes; must be a bijection on
/// [0, 2^width)).  Synthesized by cycle decomposition into transpositions.
/// Used e.g. to realize modular-arithmetic unitaries (Shor-style
/// period finding) exactly.
void appendPermutation(qc::Circuit& circuit, qc::Qubit offset, qc::Qubit width,
                       const std::vector<std::uint64_t>& image,
                       const std::vector<qc::ControlSpec>& extraControls = {});

} // namespace qadd::synth
