#include "synth/solovay_kitaev.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace qadd::synth {

using qc::GateKind;

namespace {

SU2 hMatrix() { return SU2::fromMatrix(qc::complexMatrix(GateKind::H)); }
SU2 tMatrix() { return SU2::fromMatrix(qc::complexMatrix(GateKind::T)); }

/// Expand an encoded net word (0 = H, k = T^k) into circuit-order gates.
std::vector<GateKind> decodeWord(const std::vector<std::uint8_t>& word) {
  std::vector<GateKind> gates;
  for (const std::uint8_t symbol : word) {
    if (symbol == 0) {
      gates.push_back(GateKind::H);
    } else {
      for (std::uint8_t i = 0; i < symbol; ++i) {
        gates.push_back(GateKind::T);
      }
    }
  }
  return gates;
}

std::vector<GateKind> adjointGates(const std::vector<GateKind>& gates) {
  std::vector<GateKind> result;
  result.reserve(gates.size());
  for (auto it = gates.rbegin(); it != gates.rend(); ++it) {
    result.push_back(qc::adjointKind(*it));
  }
  return result;
}

/// Number of T-eighth-turns a gate contributes to a diagonal run (T = 1,
/// S = 2, Z = 4, Sdg = 6, Tdg = 7); -1 for non-diagonal gates.
int tEighths(GateKind kind) {
  switch (kind) {
  case GateKind::I:
    return 0;
  case GateKind::T:
    return 1;
  case GateKind::S:
    return 2;
  case GateKind::Z:
    return 4;
  case GateKind::Sdg:
    return 6;
  case GateKind::Tdg:
    return 7;
  default:
    return -1;
  }
}

void appendEighths(std::vector<GateKind>& out, int eighths) {
  switch (eighths & 7) {
  case 0:
    break;
  case 1:
    out.push_back(GateKind::T);
    break;
  case 2:
    out.push_back(GateKind::S);
    break;
  case 3:
    out.push_back(GateKind::S);
    out.push_back(GateKind::T);
    break;
  case 4:
    out.push_back(GateKind::Z);
    break;
  case 5:
    out.push_back(GateKind::Z);
    out.push_back(GateKind::T);
    break;
  case 6:
    out.push_back(GateKind::Sdg);
    break;
  case 7:
    out.push_back(GateKind::Tdg);
    break;
  default:
    break;
  }
}

} // namespace

std::vector<GateKind> simplifySequence(std::vector<GateKind> gates) {
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<GateKind> next;
    next.reserve(gates.size());
    std::size_t i = 0;
    while (i < gates.size()) {
      // Fold a maximal diagonal run.
      if (tEighths(gates[i]) >= 0) {
        int eighths = 0;
        std::size_t j = i;
        while (j < gates.size() && tEighths(gates[j]) >= 0) {
          eighths += tEighths(gates[j]);
          ++j;
        }
        const std::size_t before = next.size();
        appendEighths(next, eighths);
        if (next.size() - before != j - i) {
          changed = true;
        }
        i = j;
        continue;
      }
      // Cancel H H.
      if (gates[i] == GateKind::H && i + 1 < gates.size() && gates[i + 1] == GateKind::H) {
        i += 2;
        changed = true;
        continue;
      }
      next.push_back(gates[i]);
      ++i;
    }
    gates = std::move(next);
  }
  return gates;
}

SolovayKitaev::SolovayKitaev(Options options) : options_(options) {
  if (options_.hLayers < 1 || options_.depth < 0) {
    throw std::invalid_argument("SolovayKitaev: invalid options");
  }
  buildNet();
}

void SolovayKitaev::buildNet() {
  const SU2 h = hMatrix();
  const SU2 t = tMatrix();
  // Precompute T^k.
  std::array<SU2, 8> tPowers;
  for (int k = 1; k < 8; ++k) {
    tPowers[k] = t * tPowers[k - 1];
  }
  // Canonical words: T^(k0) (H T^(ki))^m, k0 in 0..7, inner ki in 1..7,
  // trailing ki in 0..7 (0 only for the last factor to close with a bare H).
  // Enumerate by BFS over the number of H layers.
  struct Partial {
    SU2 matrix;
    std::vector<std::uint8_t> word;
  };
  std::vector<Partial> layer;
  net_.clear();
  for (std::uint8_t k0 = 0; k0 < 8; ++k0) {
    Partial p;
    p.matrix = tPowers[k0]; // tPowers[0] is identity
    if (k0 > 0) {
      p.word.push_back(k0);
    }
    net_.push_back({p.matrix, p.word});
    layer.push_back(std::move(p));
  }
  for (int m = 0; m < options_.hLayers; ++m) {
    std::vector<Partial> nextLayer;
    nextLayer.reserve(layer.size() * 7);
    for (const Partial& p : layer) {
      // Append H, then optionally T^k.  Words ending in a bare H are emitted
      // to the net but only extended with non-trivial T powers (to keep the
      // enumeration canonical and duplicate-free).
      Partial withH;
      withH.matrix = h * p.matrix;
      withH.word = p.word;
      withH.word.push_back(0);
      net_.push_back({withH.matrix, withH.word});
      for (std::uint8_t k = 1; k < 8; ++k) {
        Partial q;
        q.matrix = tPowers[k] * withH.matrix;
        q.word = withH.word;
        q.word.push_back(k);
        net_.push_back({q.matrix, q.word});
        if (m + 1 < options_.hLayers) {
          nextLayer.push_back(std::move(q));
        }
      }
    }
    layer = std::move(nextLayer);
  }
}

CliffordTSequence SolovayKitaev::baseApproximation(const SU2& target) const {
  double bestDistance = std::numeric_limits<double>::infinity();
  const NetEntry* best = nullptr;
  for (const NetEntry& entry : net_) {
    const double d = SU2::distance(entry.matrix, target);
    if (d < bestDistance) {
      bestDistance = d;
      best = &entry;
    }
  }
  assert(best != nullptr);
  // Net words are stored outermost-first (matrix product order); circuit
  // order is the reverse: the word symbol list reads left-to-right as matrix
  // factors applied last-to-first.  decodeWord returns gates so that
  // sequenceMatrix(gates) == entry.matrix, i.e. circuit order = word order.
  return {decodeWord(best->word), best->matrix};
}

void SolovayKitaev::groupCommutatorDecompose(const SU2& delta, SU2& v, SU2& w) {
  // delta is a rotation by theta about axis n.  Choose phi so that the
  // commutator of two phi-rotations about x and y is a theta-rotation:
  //   sin(theta/2) = 2 sin^2(phi/2) sqrt(1 - sin^4(phi/2)).
  double nx = 0.0;
  double ny = 0.0;
  double nz = 0.0;
  double theta = 0.0;
  delta.toAxisAngle(nx, ny, nz, theta);
  if (theta > M_PI) { // use the short way around (projective)
    theta = 2.0 * M_PI - theta;
    nx = -nx;
    ny = -ny;
    nz = -nz;
  }
  const double target = std::sin(theta / 2);
  // Bisection for t = sin(phi/2) on [0, (1/2)^(1/4)] where f is monotone.
  double lo = 0.0;
  double hi = std::pow(0.5, 0.25);
  for (int iteration = 0; iteration < 200; ++iteration) {
    const double mid = 0.5 * (lo + hi);
    const double f = 2.0 * mid * mid * std::sqrt(1.0 - mid * mid * mid * mid);
    (f < target ? lo : hi) = mid;
  }
  const double t = 0.5 * (lo + hi);
  const double phi = 2.0 * std::asin(t);
  const SU2 vx = SU2::fromAxisAngle(1, 0, 0, phi);
  const SU2 wy = SU2::fromAxisAngle(0, 1, 0, phi);
  // Axis of the commutator [vx, wy]:
  const SU2 commutator = vx * wy * vx.adjoint() * wy.adjoint();
  double mx = 0.0;
  double my = 0.0;
  double mz = 0.0;
  double commutatorAngle = 0.0;
  commutator.toAxisAngle(mx, my, mz, commutatorAngle);
  if (commutatorAngle > M_PI) {
    mx = -mx;
    my = -my;
    mz = -mz;
  }
  // Similarity transform s maps axis m to axis n; conjugating both rotations
  // by it conjugates the commutator.
  const double dot = std::clamp(mx * nx + my * ny + mz * nz, -1.0, 1.0);
  double axisX = my * nz - mz * ny;
  double axisY = mz * nx - mx * nz;
  double axisZ = mx * ny - my * nx;
  const double crossNorm = std::sqrt(axisX * axisX + axisY * axisY + axisZ * axisZ);
  SU2 s; // identity when axes already aligned
  if (crossNorm > 1e-12) {
    s = SU2::fromAxisAngle(axisX / crossNorm, axisY / crossNorm, axisZ / crossNorm,
                           std::acos(dot));
  } else if (dot < 0) {
    // Antiparallel: rotate by pi about any axis orthogonal to m.
    if (std::abs(mx) < 0.9) {
      axisX = 0.0;
      axisY = -mz;
      axisZ = my;
    } else {
      axisX = -my;
      axisY = mx;
      axisZ = 0.0;
    }
    const double n = std::sqrt(axisX * axisX + axisY * axisY + axisZ * axisZ);
    s = SU2::fromAxisAngle(axisX / n, axisY / n, axisZ / n, M_PI);
  }
  v = s * vx * s.adjoint();
  w = s * wy * s.adjoint();
}

CliffordTSequence SolovayKitaev::approximate(const SU2& target) const {
  return approximate(target, options_.depth);
}

CliffordTSequence SolovayKitaev::approximate(const SU2& target, int depth) const {
  if (depth <= 0) {
    return baseApproximation(target);
  }
  CliffordTSequence previous = approximate(target, depth - 1);
  const SU2 delta = target * previous.matrix.adjoint();
  SU2 v;
  SU2 w;
  groupCommutatorDecompose(delta, v, w);
  const CliffordTSequence vApprox = approximate(v, depth - 1);
  const CliffordTSequence wApprox = approximate(w, depth - 1);

  // result = V W V^dag W^dag U_{n-1}: circuit order is U first, then W^dag...
  std::vector<GateKind> gates = previous.gates;
  const auto wDagger = adjointGates(wApprox.gates);
  const auto vDagger = adjointGates(vApprox.gates);
  gates.insert(gates.end(), wDagger.begin(), wDagger.end());
  gates.insert(gates.end(), vDagger.begin(), vDagger.end());
  gates.insert(gates.end(), wApprox.gates.begin(), wApprox.gates.end());
  gates.insert(gates.end(), vApprox.gates.begin(), vApprox.gates.end());
  gates = simplifySequence(std::move(gates));

  const SU2 matrix = vApprox.matrix * wApprox.matrix * vApprox.matrix.adjoint() *
                     wApprox.matrix.adjoint() * previous.matrix;
  return {std::move(gates), matrix};
}

CliffordTSequence SolovayKitaev::approximateRz(double angle) const {
  return approximate(SU2::fromAxisAngle(0, 0, 1, angle));
}

} // namespace qadd::synth
