/// \file su2.hpp
/// SU(2) elements (projectively, i.e. up to global phase) for the
/// Solovay-Kitaev synthesizer.  Values are stored as unit quaternions
/// (w, x, y, z) corresponding to U = w I - i (x X + y Y + z Z); the matrix
/// form is [[w - i z, -y - i x], [y - i x, w + i z]].
#pragma once

#include <array>
#include <complex>
#include <cstddef>

namespace qadd::synth {

/// A projective SU(2) element (unit quaternion, canonical sign w >= 0).
class SU2 {
public:
  /// Identity.
  SU2() : w_(1.0), x_(0.0), y_(0.0), z_(0.0) {}

  SU2(double w, double x, double y, double z);

  /// From a (unitary up to scale) 2x2 matrix; the global phase is dropped.
  [[nodiscard]] static SU2 fromMatrix(const std::array<std::complex<double>, 4>& m);

  /// Rotation by `angle` about the (normalized) axis (nx, ny, nz).
  [[nodiscard]] static SU2 fromAxisAngle(double nx, double ny, double nz, double angle);

  [[nodiscard]] double w() const { return w_; }
  [[nodiscard]] double x() const { return x_; }
  [[nodiscard]] double y() const { return y_; }
  [[nodiscard]] double z() const { return z_; }

  /// Matrix form [[u00, u01], [u10, u11]].
  [[nodiscard]] std::array<std::complex<double>, 4> toMatrix() const;

  /// Rotation angle theta in [0, 2*pi) and (unit) axis; the axis of the
  /// identity is arbitrary (z is returned).
  void toAxisAngle(double& nx, double& ny, double& nz, double& angle) const;

  [[nodiscard]] SU2 adjoint() const { return {w_, -x_, -y_, -z_}; }

  friend SU2 operator*(const SU2& a, const SU2& b);

  /// Projective distance: Frobenius distance minimized over global phase,
  /// d = sqrt(max(0, 4 - 2|tr(A^dagger B)|)) = 2 sqrt(1 - |<a,b>|).
  [[nodiscard]] static double distance(const SU2& a, const SU2& b);

private:
  double w_;
  double x_;
  double y_;
  double z_;
};

} // namespace qadd::synth
