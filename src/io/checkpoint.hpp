/// \file checkpoint.hpp
/// QCKP — the simulator checkpoint envelope: a QDDS state snapshot plus the
/// simulation position it was taken at (gate index + the circuit's text
/// serialization, so a resume can verify it targets the same circuit).  The
/// envelope is CRC-checked independently of the embedded snapshot, which
/// keeps the two formats separable: any QDDS consumer can extract and load
/// the state blob on its own.
///
/// Layout: magic "QCKP" | u16 version | varint gateIndex | string circuit
/// text | block QDDS snapshot | u32 CRC-32 over everything before it.
///
/// This header is deliberately free of qc/ includes — the qc::Simulator
/// includes *us* to implement saveCheckpoint()/resumeFrom().
#pragma once

#include "io/codec.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace qadd::io {

inline constexpr std::array<std::uint8_t, 4> kQckpMagic{'Q', 'C', 'K', 'P'};
inline constexpr std::uint16_t kQckpVersion = 1;

/// Decoded checkpoint: where the simulation stood and the state it held.
struct CheckpointData {
  std::uint64_t gateIndex = 0; ///< gates applied when the checkpoint was taken
  std::string circuitText;     ///< qc::Circuit::toText() of the simulated circuit
  std::vector<std::uint8_t> snapshot; ///< embedded QDDS blob of the state DD
};

[[nodiscard]] inline std::vector<std::uint8_t> writeCheckpoint(const CheckpointData& data) {
  ByteWriter writer;
  writer.raw(kQckpMagic);
  writer.u16(kQckpVersion);
  writer.varint(data.gateIndex);
  writer.string(data.circuitText);
  writer.block(data.snapshot);
  writer.u32(Crc32::of(writer.bytes()));
  return writer.take();
}

[[nodiscard]] inline CheckpointData readCheckpoint(std::span<const std::uint8_t> bytes) {
  constexpr std::size_t kFooterBytes = 4;
  if (bytes.size() < kQckpMagic.size() + 2 + kFooterBytes) {
    throw SnapshotError("checkpoint too short to hold a QCKP header");
  }
  const std::uint32_t storedCrc = ByteReader(bytes.last(kFooterBytes)).u32();
  const std::uint32_t actualCrc = Crc32::of(bytes.first(bytes.size() - kFooterBytes));
  if (storedCrc != actualCrc) {
    throw SnapshotError("checkpoint CRC mismatch: file is corrupted");
  }
  ByteReader reader(bytes.first(bytes.size() - kFooterBytes));
  const auto magic = reader.raw(kQckpMagic.size());
  if (!std::equal(magic.begin(), magic.end(), kQckpMagic.begin())) {
    throw SnapshotError("bad magic bytes (not a QCKP checkpoint)");
  }
  const std::uint16_t version = reader.u16();
  if (version != kQckpVersion) {
    throw SnapshotError("unsupported QCKP version " + std::to_string(version));
  }
  CheckpointData data;
  data.gateIndex = reader.varint();
  data.circuitText = reader.string();
  const auto blob = reader.block();
  data.snapshot.assign(blob.begin(), blob.end());
  if (!reader.atEnd()) {
    throw SnapshotError("trailing bytes in checkpoint");
  }
  return data;
}

} // namespace qadd::io
