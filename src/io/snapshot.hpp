/// \file snapshot.hpp
/// QDDS — the versioned binary snapshot format for QMDD decision diagrams
/// (byte-level spec in docs/SNAPSHOT_FORMAT.md).
///
/// A snapshot stores one vector or matrix DD under either weight system:
///  - algebraic snapshots record every edge weight as its exact canonical
///    Q[omega] element (BigInt coefficients), so a reload is *bit-exact*:
///    the rebuilt DD has the identical canonical node count and exactly
///    equal weights;
///  - numeric snapshots record every weight as raw mantissa/exponent pairs
///    of the table's FloatT (exact IEEE round trip) together with the
///    tolerance ε the table was built with.  Loading into a package with a
///    different ε, float precision, or normalization is rejected loudly —
///    an ε-table's content is meaningless under another tolerance.
///
/// Nodes are written in topological (children-before-parents) order and are
/// re-interned through the target package's UniqueTable/MemoryManager on
/// load via the ordinary makeVNode/makeMNode path, so a loaded DD is
/// canonical by construction and shares nodes with whatever already lives in
/// the package (the load-dedup counter in obs::IoStats measures exactly
/// that).  Node records carry the *canonical* stored weights; the loader
/// folds any re-normalization factor into the parent edges, which makes
/// loads robust across algebraic normalization schemes and against
/// non-canonical input.
#pragma once

#include "core/algebraic_system.hpp"
#include "core/numeric_system.hpp"
#include "core/package.hpp"
#include "io/codec.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <span>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

namespace qadd::io {

inline constexpr std::array<std::uint8_t, 4> kQddsMagic{'Q', 'D', 'D', 'S'};
/// Current write version.  v2 (skip-level edges) appends an entering-level
/// varint to every child edge record and to the root edge record; v1
/// snapshots (no edge levels, identity structure fully materialized) still
/// load — the rebuild path re-canonicalizes them, collapsing identity
/// patterns into skip edges when the target package has skipping enabled.
inline constexpr std::uint16_t kQddsVersion = 2;
/// Oldest version parseEnvelope accepts.
inline constexpr std::uint16_t kQddsMinVersion = 1;
/// Fixed header: magic(4) version(2) kind(1) system(1) qubits(4) payload(8)
/// reserved(4).
inline constexpr std::size_t kQddsHeaderBytes = 24;
/// Trailing CRC-32 over header + payload.
inline constexpr std::size_t kQddsFooterBytes = 4;

enum class DdKind : std::uint8_t { Vector = 1, Matrix = 2 };
enum class SystemTag : std::uint8_t { Algebraic = 1, Numeric = 2 };

[[nodiscard]] std::string_view toString(DdKind kind);
[[nodiscard]] std::string_view toString(SystemTag tag);

/// Parsed header + payload meta of a snapshot (the `qadd_snapshot info`
/// view); obtainable without a package via readInfo().
struct SnapshotInfo {
  DdKind kind = DdKind::Vector;
  SystemTag system = SystemTag::Algebraic;
  std::uint16_t version = kQddsVersion;
  std::uint32_t qubits = 0;
  std::uint64_t nodeCount = 0;
  std::uint64_t weightCount = 0;
  std::uint64_t payloadBytes = 0;
  std::uint64_t totalBytes = 0;
  std::uint8_t normalization = 0; ///< system-specific enum value
  // numeric-only meta (zero for algebraic snapshots)
  double epsilon = 0.0;
  std::uint8_t floatDigits = 0; ///< mantissa bits of the table's FloatT

  [[nodiscard]] std::string describe() const;
};

/// Parse and validate header + CRC; throws SnapshotError on any corruption.
[[nodiscard]] SnapshotInfo readInfo(std::span<const std::uint8_t> bytes);

// -- file helpers -----------------------------------------------------------------

/// Write a blob to `path` (atomic enough for our purposes: truncate +
/// write + flush).  \throws SnapshotError on any I/O failure.
void writeBytesFile(const std::string& path, std::span<const std::uint8_t> bytes);
/// Read a whole file. \throws SnapshotError on any I/O failure.
[[nodiscard]] std::vector<std::uint8_t> readBytesFile(const std::string& path);

// -- float codec ------------------------------------------------------------------

namespace detail {

/// Exact, width-independent encoding of a finite FloatT: flags byte
/// (bit0 = zero, bit1 = sign), then for non-zero values the 64-bit scaled
/// mantissa (frexp magnitude in [0.5,1) times 2^64) and the zigzag-varint
/// binary exponent.  Exact for every float type with <= 64 mantissa bits
/// (double and x87 long double included), with no dependence on the
/// in-memory layout — long double's padding bytes never touch the wire.
template <class FloatT> void writeFloat(ByteWriter& writer, FloatT value) {
  if (value == FloatT{0}) {
    writer.u8(std::signbit(value) ? 0x03 : 0x01);
    return;
  }
  if (!std::isfinite(value)) {
    throw SnapshotError("non-finite weight component cannot be serialized");
  }
  std::uint8_t flags = 0;
  FloatT magnitude = value;
  if (value < FloatT{0}) {
    flags |= 0x02;
    magnitude = -value;
  }
  writer.u8(flags);
  int exponent = 0;
  const FloatT mantissa = std::frexp(magnitude, &exponent); // in [0.5, 1)
  // mantissa * 2^64 is an exact integer in [2^63, 2^64) for <= 64-bit
  // mantissas, so the conversion below is lossless.
  writer.u64(static_cast<std::uint64_t>(std::ldexp(mantissa, 64)));
  writer.svarint(exponent);
}

template <class FloatT> [[nodiscard]] FloatT readFloat(ByteReader& reader) {
  const std::uint8_t flags = reader.u8();
  if ((flags & 0x01U) != 0) {
    return (flags & 0x02U) != 0 ? -FloatT{0} : FloatT{0};
  }
  const std::uint64_t mantissa = reader.u64();
  const std::int64_t exponent = reader.svarint();
  if (mantissa == 0) {
    throw SnapshotError("malformed float record (zero mantissa in non-zero value)");
  }
  if (exponent < std::numeric_limits<int>::min() + 64 || exponent > std::numeric_limits<int>::max()) {
    throw SnapshotError("malformed float record (exponent out of range)");
  }
  const FloatT magnitude = std::ldexp(static_cast<FloatT>(mantissa), static_cast<int>(exponent) - 64);
  return (flags & 0x02U) != 0 ? -magnitude : magnitude;
}

/// Decode one BigInt through the bounds-checked reader (rethrowing its
/// validation failures as SnapshotError).
[[nodiscard]] inline BigInt readBigInt(ByteReader& reader) {
  std::size_t consumed = 0;
  try {
    BigInt value = BigInt::fromBytes(reader.rest(), consumed);
    reader.skip(consumed);
    return value;
  } catch (const std::invalid_argument& error) {
    throw SnapshotError(std::string("malformed BigInt record: ") + error.what());
  }
}

} // namespace detail

// -- per-system weight codec -------------------------------------------------------

/// Weight/meta encoding per weight system.  `checkMeta` must reject any
/// snapshot whose weights would not be meaningful in the target system.
template <class System> struct SystemCodec;

template <> struct SystemCodec<dd::AlgebraicSystem> {
  static constexpr SystemTag kTag = SystemTag::Algebraic;

  static void writeMeta(ByteWriter& writer, const dd::AlgebraicSystem& system) {
    writer.u8(static_cast<std::uint8_t>(system.config().normalization));
  }

  static void checkMeta(ByteReader& reader, const dd::AlgebraicSystem& /*system*/) {
    const std::uint8_t normalization = reader.u8();
    if (normalization > static_cast<std::uint8_t>(dd::AlgebraicSystem::Normalization::UnitPart)) {
      throw SnapshotError("unknown algebraic normalization tag in snapshot");
    }
    // Exact values are portable across algebraic normalization schemes: the
    // loader re-normalizes every node record exactly, so no mismatch check.
  }

  static void writeWeight(ByteWriter& writer, const dd::AlgebraicSystem& system,
                          dd::AlgebraicSystem::Weight handle) {
    const alg::QOmega& value = system.value(handle);
    value.num().a().toBytes(writer.buffer());
    value.num().b().toBytes(writer.buffer());
    value.num().c().toBytes(writer.buffer());
    value.num().d().toBytes(writer.buffer());
    writer.svarint(value.k());
    value.den().toBytes(writer.buffer());
  }

  [[nodiscard]] static dd::AlgebraicSystem::Weight readWeight(ByteReader& reader,
                                                              dd::AlgebraicSystem& system) {
    BigInt a = detail::readBigInt(reader);
    BigInt b = detail::readBigInt(reader);
    BigInt c = detail::readBigInt(reader);
    BigInt d = detail::readBigInt(reader);
    const std::int64_t k = reader.svarint();
    BigInt den = detail::readBigInt(reader);
    if (den.sign() <= 0 || den.isEven()) {
      throw SnapshotError("malformed Q[omega] record (denominator must be odd positive)");
    }
    // The QOmega constructor re-canonicalizes; canonical input passes
    // through unchanged, so interning reproduces the original value exactly.
    return system.intern(alg::QOmega{
        alg::ZOmega{std::move(a), std::move(b), std::move(c), std::move(d)},
        static_cast<long>(k), std::move(den)});
  }
};

template <class FloatT> struct SystemCodec<dd::BasicNumericSystem<FloatT>> {
  static constexpr SystemTag kTag = SystemTag::Numeric;
  using System = dd::BasicNumericSystem<FloatT>;

  static void writeMeta(ByteWriter& writer, const System& system) {
    writer.u8(static_cast<std::uint8_t>(std::numeric_limits<FloatT>::digits));
    writer.f64(system.config().epsilon);
    writer.u8(static_cast<std::uint8_t>(system.config().normalization));
  }

  static void checkMeta(ByteReader& reader, const System& system) {
    const std::uint8_t digits = reader.u8();
    const double epsilon = reader.f64();
    const std::uint8_t normalization = reader.u8();
    if (digits != static_cast<std::uint8_t>(std::numeric_limits<FloatT>::digits)) {
      std::ostringstream os;
      os << "snapshot holds " << static_cast<int>(digits)
         << "-bit-mantissa weights but the target table uses "
         << std::numeric_limits<FloatT>::digits << "-bit floats; cross-precision loads "
         << "are not supported (use qadd_snapshot convert)";
      throw SnapshotError(os.str());
    }
    if (epsilon != system.config().epsilon) {
      std::ostringstream os;
      os << "snapshot was written under tolerance eps=" << epsilon
         << " but the target table uses eps=" << system.config().epsilon
         << "; cross-tolerance loads are not supported (an eps-table's content is "
         << "only meaningful under its own tolerance)";
      throw SnapshotError(os.str());
    }
    if (normalization != static_cast<std::uint8_t>(system.config().normalization)) {
      throw SnapshotError(
          "snapshot was written under a different numeric normalization scheme; "
          "tolerance-mode re-normalization is not exact, so the load is rejected");
    }
  }

  static void writeWeight(ByteWriter& writer, const System& system,
                          typename System::Weight handle) {
    const typename System::Value value = system.valueOf(handle);
    detail::writeFloat<FloatT>(writer, value.re);
    detail::writeFloat<FloatT>(writer, value.im);
  }

  [[nodiscard]] static typename System::Weight readWeight(ByteReader& reader, System& system) {
    const FloatT re = detail::readFloat<FloatT>(reader);
    const FloatT im = detail::readFloat<FloatT>(reader);
    return system.fromValue(typename System::Value{re, im});
  }
};

// -- save / load ------------------------------------------------------------------

namespace detail {

struct ParsedSnapshot {
  DdKind kind;
  SystemTag system;
  std::uint16_t version;
  std::uint32_t qubits;
  std::span<const std::uint8_t> payload;
};

/// Validate magic/version/length/CRC and slice out the payload.
[[nodiscard]] ParsedSnapshot parseEnvelope(std::span<const std::uint8_t> bytes);

template <class System, class EdgeT>
[[nodiscard]] std::vector<std::uint8_t> saveDd(dd::Package<System>& package, const EdgeT& root,
                                               DdKind kind) {
  using NodeT = typename EdgeT::Node;
  using Weight = typename System::Weight;

  // Topological (children-before-parents) node order + dense ids.
  std::vector<const NodeT*> order;
  std::unordered_map<const NodeT*, std::uint64_t> ids;
  auto visit = [&](auto&& self, const NodeT* node) -> void {
    if (node == nullptr || ids.contains(node)) {
      return;
    }
    ids.emplace(node, std::uint64_t{0}); // DAG: safe to mark before descending
    for (const auto& child : node->e) {
      self(self, child.node);
    }
    ids[node] = order.size();
    order.push_back(node);
  };
  visit(visit, root.node);

  // Used weights.  Order-dependent (tolerance-mode) systems dump sorted
  // ascending by handle — the original interning order — so a reload into a
  // fresh table replays the same unification decisions.  Order-independent
  // systems dump in first-use order of the topological walk instead: their
  // handle values shift with kernel scheduling under the parallel kernels,
  // but the walk depends only on the DD itself, so snapshot bytes stay
  // identical between serial and parallel runs (reload order is immaterial
  // when interning is exact).
  std::vector<Weight> dumpOrder;
  std::unordered_map<Weight, std::uint64_t> weightIndex;
  auto noteWeight = [&](Weight handle) {
    if (weightIndex.emplace(handle, dumpOrder.size()).second) {
      dumpOrder.push_back(handle);
    }
  };
  if (package.system().memoizationOrderDependent()) {
    std::set<Weight> used{root.w};
    for (const NodeT* node : order) {
      for (const auto& child : node->e) {
        used.insert(child.w);
      }
    }
    for (const Weight handle : used) {
      noteWeight(handle);
    }
  } else {
    for (const NodeT* node : order) {
      for (const auto& child : node->e) {
        noteWeight(child.w);
      }
    }
    noteWeight(root.w);
  }

  ByteWriter payload;
  SystemCodec<System>::writeMeta(payload, package.system());
  payload.varint(dumpOrder.size());
  payload.varint(order.size());
  for (const Weight handle : dumpOrder) {
    SystemCodec<System>::writeWeight(payload, package.system(), handle);
  }
  for (const NodeT* node : order) {
    payload.varint(node->var);
    for (const auto& child : node->e) {
      payload.varint(child.node == nullptr ? 0 : ids.at(child.node) + 1);
      payload.varint(weightIndex.at(child.w));
      // v2: the edge's entering level.  Canonical (makeNode enforces
      // node->var + 1 for stored non-terminal children, 0 for terminal
      // edges), so this is self-description + load-time validation; the
      // skip itself shows as child.node->var jumping past it.
      payload.varint(child.var);
    }
  }
  payload.varint(root.node == nullptr ? 0 : ids.at(root.node) + 1);
  payload.varint(weightIndex.at(root.w));
  // v2: the root edge's entering level — the only edge var that is not
  // derivable from node records (a root may skip from above its node).
  payload.varint(root.var);

  ByteWriter out;
  out.raw(kQddsMagic);
  out.u16(kQddsVersion);
  out.u8(static_cast<std::uint8_t>(kind));
  out.u8(static_cast<std::uint8_t>(SystemCodec<System>::kTag));
  out.u32(package.qubits());
  out.u64(payload.size());
  out.u32(0); // reserved
  out.raw(payload.bytes());
  out.u32(Crc32::of(out.bytes()));

  obs::IoStats& io = package.ioCounters();
  io.snapshotsSaved.inc();
  io.nodesWritten.inc(order.size());
  io.weightsWritten.inc(dumpOrder.size());
  io.bytesWritten.inc(out.size());
  return out.take();
}

template <class System, class EdgeT>
[[nodiscard]] EdgeT loadDd(dd::Package<System>& package, std::span<const std::uint8_t> bytes,
                           DdKind kind) {
  using Weight = typename System::Weight;
  constexpr std::size_t N = EdgeT::Node::kBranching;

  const ParsedSnapshot parsed = parseEnvelope(bytes);
  if (parsed.kind != kind) {
    throw SnapshotError(std::string("snapshot holds a ") + std::string(toString(parsed.kind)) +
                        " DD, but a " + std::string(toString(kind)) + " DD was requested");
  }
  if (parsed.system != SystemCodec<System>::kTag) {
    throw SnapshotError(std::string("snapshot was written by the ") +
                        std::string(toString(parsed.system)) +
                        " weight system and cannot load into a " +
                        std::string(toString(SystemCodec<System>::kTag)) +
                        " package (use qadd_snapshot convert)");
  }
  if (parsed.qubits != package.qubits()) {
    throw SnapshotError("snapshot register width (" + std::to_string(parsed.qubits) +
                        " qubits) does not match the target package (" +
                        std::to_string(package.qubits()) + ")");
  }

  ByteReader reader(parsed.payload);
  SystemCodec<System>::checkMeta(reader, package.system());
  const std::uint64_t weightCount = reader.varint();
  const std::uint64_t nodeCount = reader.varint();
  // Every record is at least one byte; cheap guard against absurd counts.
  if (weightCount > parsed.payload.size() || nodeCount > parsed.payload.size()) {
    throw SnapshotError("implausible record counts in snapshot payload");
  }

  std::vector<Weight> weights;
  weights.reserve(static_cast<std::size_t>(weightCount));
  for (std::uint64_t i = 0; i < weightCount; ++i) {
    weights.push_back(SystemCodec<System>::readWeight(reader, package.system()));
  }
  auto weightAt = [&](std::uint64_t index) -> Weight {
    if (index >= weights.size()) {
      throw SnapshotError("weight index out of range in node record");
    }
    return weights[static_cast<std::size_t>(index)];
  };

  // Rebuild bottom-up through the ordinary normalizing construction.  Stored
  // node weights are canonical, so makeNode returns a factor of one and the
  // rebuilt edge is {node, one}; if re-normalization does extract a factor
  // (cross-normalization algebraic load, or dedup against a live tolerance
  // table), it is folded into the parent edges, keeping the represented
  // function intact.  The rebuilt sub-edge keeps the entering level makeNode
  // assigned for the *stored* node's variable: when identity structure in a
  // v1 snapshot collapses into skip edges during rebuild, that level is
  // exactly where the vanished structure used to begin.
  const std::size_t liveBefore = package.allocatedNodes();
  std::vector<EdgeT> built;
  built.reserve(static_cast<std::size_t>(nodeCount));
  auto edgeTo = [&](std::uint64_t nodeRef, Weight w) -> EdgeT {
    if (nodeRef == 0) {
      return EdgeT{nullptr, w};
    }
    if (nodeRef > built.size()) {
      throw SnapshotError("node record references a not-yet-defined node "
                          "(snapshot is not in topological order)");
    }
    const EdgeT& sub = built[static_cast<std::size_t>(nodeRef - 1)];
    if (package.system().isZero(w) || package.system().isZero(sub.w)) {
      return EdgeT{nullptr, package.system().zero()};
    }
    return EdgeT{sub.node, package.system().mul(w, sub.w), sub.var};
  };
  const bool hasEdgeVars = parsed.version >= 2;
  for (std::uint64_t i = 0; i < nodeCount; ++i) {
    const std::uint64_t var = reader.varint();
    if (var >= package.qubits()) {
      throw SnapshotError("node variable out of range in snapshot");
    }
    std::array<EdgeT, N> children;
    for (std::size_t c = 0; c < N; ++c) {
      const std::uint64_t nodeRef = reader.varint();
      const Weight w = weightAt(reader.varint());
      children[c] = edgeTo(nodeRef, w);
      if (hasEdgeVars) {
        // Stored child edge vars are canonical by construction; reject
        // anything else rather than silently re-canonicalize corrupt input.
        const std::uint64_t childVar = reader.varint();
        if (childVar != (nodeRef == 0 ? 0 : var + 1)) {
          throw SnapshotError("non-canonical child edge level in snapshot");
        }
      }
    }
    if constexpr (N == 2) {
      built.push_back(package.makeVNode(static_cast<dd::Qubit>(var), children));
    } else {
      built.push_back(package.makeMNode(static_cast<dd::Qubit>(var), children));
    }
  }
  const std::uint64_t rootRef = reader.varint();
  const Weight rootW = weightAt(reader.varint());
  EdgeT root = edgeTo(rootRef, rootW);
  if (hasEdgeVars) {
    // v2 stores the root's entering level explicitly (the root may skip
    // from above its node); v1 roots enter at the stored top node's level.
    const std::uint64_t rootVar = reader.varint();
    if (root.node == nullptr) {
      if (rootVar != 0) {
        throw SnapshotError("non-canonical root edge level in snapshot");
      }
    } else {
      if (rootVar > root.var || rootVar >= package.qubits()) {
        throw SnapshotError("root edge level out of range in snapshot");
      }
      root.var = static_cast<dd::Qubit>(rootVar);
    }
  }
  if (!reader.atEnd()) {
    throw SnapshotError("trailing bytes in snapshot payload");
  }

  obs::IoStats& io = package.ioCounters();
  io.snapshotsLoaded.inc();
  io.nodesRead.inc(nodeCount);
  io.weightsRead.inc(weightCount);
  io.bytesRead.inc(bytes.size());
  const std::size_t created = package.allocatedNodes() - liveBefore;
  io.loadDedupNodes.inc(static_cast<std::uint64_t>(nodeCount) - created);
  return root;
}

} // namespace detail

/// Serialize a vector DD rooted at `root` (which must live in `package`).
template <class System>
[[nodiscard]] std::vector<std::uint8_t> saveVector(dd::Package<System>& package,
                                                   const typename dd::Package<System>::VEdge& root) {
  return detail::saveDd<System>(package, root, DdKind::Vector);
}

/// Serialize a matrix DD.
template <class System>
[[nodiscard]] std::vector<std::uint8_t> saveMatrix(dd::Package<System>& package,
                                                   const typename dd::Package<System>::MEdge& root) {
  return detail::saveDd<System>(package, root, DdKind::Matrix);
}

/// Rebuild a vector DD from a snapshot, re-interning every node and weight
/// through `package`'s tables.  The caller owns the returned edge (incRef it
/// to protect it across garbage collections).  \throws SnapshotError on
/// corruption or any system/width/tolerance mismatch.
template <class System>
[[nodiscard]] typename dd::Package<System>::VEdge
loadVector(dd::Package<System>& package, std::span<const std::uint8_t> bytes) {
  return detail::loadDd<System, typename dd::Package<System>::VEdge>(package, bytes,
                                                                     DdKind::Vector);
}

/// Rebuild a matrix DD from a snapshot.
template <class System>
[[nodiscard]] typename dd::Package<System>::MEdge
loadMatrix(dd::Package<System>& package, std::span<const std::uint8_t> bytes) {
  return detail::loadDd<System, typename dd::Package<System>::MEdge>(package, bytes,
                                                                     DdKind::Matrix);
}

// -- algebraic -> numeric conversion ----------------------------------------------

namespace detail {

template <class NumSystem, class AlgEdge, class NumEdge>
[[nodiscard]] NumEdge convertEdge(const dd::Package<dd::AlgebraicSystem>& in, const AlgEdge& edge,
                                  dd::Package<NumSystem>& out,
                                  std::unordered_map<const void*, NumEdge>& memo) {
  using Value = typename NumSystem::Value;
  using Float = typename NumSystem::Float;
  const std::complex<double> z = in.system().value(edge.w).toComplex();
  const typename NumSystem::Weight w =
      out.system().fromValue(Value{static_cast<Float>(z.real()), static_cast<Float>(z.imag())});
  if (out.system().isZero(w)) {
    return NumEdge{nullptr, out.system().zero()};
  }
  if (edge.isTerminal()) {
    return NumEdge{nullptr, w};
  }
  NumEdge sub;
  if (const auto it = memo.find(edge.node); it != memo.end()) {
    sub = it->second;
  } else {
    constexpr std::size_t N = NumEdge::Node::kBranching;
    std::array<NumEdge, N> children;
    for (std::size_t c = 0; c < N; ++c) {
      children[c] = convertEdge<NumSystem, AlgEdge, NumEdge>(in, edge.node->e[c], out, memo);
    }
    if constexpr (N == 2) {
      sub = out.makeVNode(edge.node->var, children);
    } else {
      sub = out.makeMNode(edge.node->var, children);
    }
    memo.emplace(edge.node, sub);
  }
  if (out.system().isZero(sub.w)) {
    return NumEdge{nullptr, out.system().zero()};
  }
  return NumEdge{sub.node, out.system().mul(w, sub.w)};
}

} // namespace detail

/// Rebuild an algebraic vector DD in a numeric package: every exact Q[omega]
/// edge weight is rounded once to the target float type, then the diagram is
/// re-normalized and re-interned under the target ε-table.  This is the
/// engine behind `qadd_snapshot convert`.
template <class NumSystem>
[[nodiscard]] typename dd::Package<NumSystem>::VEdge
convertVector(const dd::Package<dd::AlgebraicSystem>& in,
              const typename dd::Package<dd::AlgebraicSystem>::VEdge& root,
              dd::Package<NumSystem>& out) {
  if (in.qubits() != out.qubits()) {
    throw SnapshotError("convertVector: register width mismatch");
  }
  std::unordered_map<const void*, typename dd::Package<NumSystem>::VEdge> memo;
  return detail::convertEdge<NumSystem, typename dd::Package<dd::AlgebraicSystem>::VEdge,
                             typename dd::Package<NumSystem>::VEdge>(in, root, out, memo);
}

/// Matrix counterpart of convertVector.
template <class NumSystem>
[[nodiscard]] typename dd::Package<NumSystem>::MEdge
convertMatrix(const dd::Package<dd::AlgebraicSystem>& in,
              const typename dd::Package<dd::AlgebraicSystem>::MEdge& root,
              dd::Package<NumSystem>& out) {
  if (in.qubits() != out.qubits()) {
    throw SnapshotError("convertMatrix: register width mismatch");
  }
  std::unordered_map<const void*, typename dd::Package<NumSystem>::MEdge> memo;
  return detail::convertEdge<NumSystem, typename dd::Package<dd::AlgebraicSystem>::MEdge,
                             typename dd::Package<NumSystem>::MEdge>(in, root, out, memo);
}

} // namespace qadd::io
