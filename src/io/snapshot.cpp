/// \file snapshot.cpp
/// Non-template half of the QDDS layer: envelope parsing/validation,
/// package-free metadata inspection (readInfo) and whole-file helpers.

#include "io/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace qadd::io {

std::string_view toString(DdKind kind) {
  switch (kind) {
  case DdKind::Vector:
    return "vector";
  case DdKind::Matrix:
    return "matrix";
  }
  return "unknown";
}

std::string_view toString(SystemTag tag) {
  switch (tag) {
  case SystemTag::Algebraic:
    return "algebraic";
  case SystemTag::Numeric:
    return "numeric";
  }
  return "unknown";
}

namespace detail {

ParsedSnapshot parseEnvelope(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kQddsHeaderBytes + kQddsFooterBytes) {
    throw SnapshotError("snapshot too short to hold a QDDS header");
  }
  ByteReader reader(bytes);
  const auto magic = reader.raw(4);
  if (!std::equal(magic.begin(), magic.end(), kQddsMagic.begin())) {
    throw SnapshotError("bad magic bytes (not a QDDS snapshot)");
  }
  const std::uint16_t version = reader.u16();
  if (version < kQddsMinVersion || version > kQddsVersion) {
    throw SnapshotError("unsupported QDDS version " + std::to_string(version) +
                        " (this build reads versions " + std::to_string(kQddsMinVersion) +
                        ".." + std::to_string(kQddsVersion) + ")");
  }
  const std::uint8_t kind = reader.u8();
  if (kind != static_cast<std::uint8_t>(DdKind::Vector) &&
      kind != static_cast<std::uint8_t>(DdKind::Matrix)) {
    throw SnapshotError("unknown DD kind tag in snapshot header");
  }
  const std::uint8_t system = reader.u8();
  if (system != static_cast<std::uint8_t>(SystemTag::Algebraic) &&
      system != static_cast<std::uint8_t>(SystemTag::Numeric)) {
    throw SnapshotError("unknown weight-system tag in snapshot header");
  }
  const std::uint32_t qubits = reader.u32();
  const std::uint64_t payloadLength = reader.u64();
  (void)reader.u32(); // reserved
  if (payloadLength != bytes.size() - kQddsHeaderBytes - kQddsFooterBytes) {
    throw SnapshotError("payload length in header does not match snapshot size");
  }
  const std::uint32_t storedCrc = ByteReader(bytes.last(kQddsFooterBytes)).u32();
  const std::uint32_t actualCrc = Crc32::of(bytes.first(bytes.size() - kQddsFooterBytes));
  if (storedCrc != actualCrc) {
    std::ostringstream os;
    os << "CRC mismatch (stored 0x" << std::hex << storedCrc << ", computed 0x" << actualCrc
       << "): snapshot is corrupted";
    throw SnapshotError(os.str());
  }
  return {static_cast<DdKind>(kind), static_cast<SystemTag>(system), version, qubits,
          bytes.subspan(kQddsHeaderBytes, static_cast<std::size_t>(payloadLength))};
}

} // namespace detail

SnapshotInfo readInfo(std::span<const std::uint8_t> bytes) {
  const detail::ParsedSnapshot parsed = detail::parseEnvelope(bytes);
  SnapshotInfo info;
  info.kind = parsed.kind;
  info.system = parsed.system;
  info.version = parsed.version;
  info.qubits = parsed.qubits;
  info.payloadBytes = parsed.payload.size();
  info.totalBytes = bytes.size();
  ByteReader reader(parsed.payload);
  if (parsed.system == SystemTag::Algebraic) {
    info.normalization = reader.u8();
  } else {
    info.floatDigits = reader.u8();
    info.epsilon = reader.f64();
    info.normalization = reader.u8();
  }
  info.weightCount = reader.varint();
  info.nodeCount = reader.varint();
  return info;
}

std::string SnapshotInfo::describe() const {
  std::ostringstream os;
  os << toString(kind) << " DD (QDDS v" << version << "), " << qubits << " qubits, "
     << toString(system) << " weights";
  if (system == SystemTag::Numeric) {
    os << " (eps=" << epsilon << ", " << static_cast<int>(floatDigits) << "-bit mantissa)";
  }
  os << ": " << nodeCount << " nodes, " << weightCount << " distinct weights, " << totalBytes
     << " bytes";
  return os.str();
}

void writeBytesFile(const std::string& path, std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw SnapshotError("cannot open '" + path + "' for writing");
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    throw SnapshotError("short write to '" + path + "'");
  }
}

std::vector<std::uint8_t> readBytesFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw SnapshotError("cannot open '" + path + "' for reading");
  }
  const std::streamsize size = in.tellg();
  in.seekg(0, std::ios::beg);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (size > 0) {
    in.read(reinterpret_cast<char*>(bytes.data()), size);
  }
  if (!in) {
    throw SnapshotError("short read from '" + path + "'");
  }
  return bytes;
}

} // namespace qadd::io
