/// \file codec.hpp
/// Byte-level primitives of the qadd::io snapshot layer: a little-endian
/// ByteWriter/ByteReader pair (fixed-width integers, LEB128 varints, zigzag
/// signed varints, raw IEEE-754 bit patterns) plus an incremental CRC-32
/// (IEEE 802.3, polynomial 0xEDB88320) used to integrity-check every QDDS
/// payload.  The reader is fully bounds-checked: any structural violation of
/// a snapshot (truncation, runaway varint, bad length prefix) surfaces as a
/// SnapshotError instead of undefined behaviour.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace qadd::io {

/// Raised for every malformed, truncated, corrupted or incompatible snapshot
/// artifact (both by the byte codecs and the QDDS/QCKP layers above them).
class SnapshotError : public std::runtime_error {
public:
  explicit SnapshotError(const std::string& what) : std::runtime_error("qadd::io: " + what) {}
};

// -- CRC-32 -----------------------------------------------------------------------

namespace detail {

/// The reflected CRC-32 table for polynomial 0xEDB88320, generated at compile
/// time (the standard IEEE 802.3 / zlib crc32 parameterization).
[[nodiscard]] constexpr std::array<std::uint32_t, 256> makeCrc32Table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1U) ^ ((crc & 1U) != 0 ? 0xEDB88320U : 0U);
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = makeCrc32Table();

} // namespace detail

/// Incremental CRC-32 (IEEE); Crc32{}.update(data).value() of "123456789"
/// is the well-known check value 0xCBF43926.
class Crc32 {
public:
  Crc32& update(std::span<const std::uint8_t> data) noexcept {
    for (const std::uint8_t byte : data) {
      state_ = (state_ >> 8U) ^ detail::kCrc32Table[(state_ ^ byte) & 0xFFU];
    }
    return *this;
  }
  [[nodiscard]] std::uint32_t value() const noexcept { return state_ ^ 0xFFFFFFFFU; }

  [[nodiscard]] static std::uint32_t of(std::span<const std::uint8_t> data) noexcept {
    return Crc32{}.update(data).value();
  }

private:
  std::uint32_t state_ = 0xFFFFFFFFU;
};

// -- writer -----------------------------------------------------------------------

/// Append-only little-endian encoder over a growable byte buffer.
class ByteWriter {
public:
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }
  /// Mutable view of the underlying buffer, for encoders that append their
  /// own bytes (BigInt::toBytes and friends).
  [[nodiscard]] std::vector<std::uint8_t>& buffer() noexcept { return bytes_; }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(bytes_); }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }

  void u8(std::uint8_t value) { bytes_.push_back(value); }
  void u16(std::uint16_t value) { fixed(value, 2); }
  void u32(std::uint32_t value) { fixed(value, 4); }
  void u64(std::uint64_t value) { fixed(value, 8); }

  /// LEB128 unsigned varint (1 byte for values < 128).
  void varint(std::uint64_t value) {
    while (value >= 0x80U) {
      bytes_.push_back(static_cast<std::uint8_t>(value) | 0x80U);
      value >>= 7U;
    }
    bytes_.push_back(static_cast<std::uint8_t>(value));
  }

  /// Zigzag-mapped signed varint (small magnitudes of either sign stay short).
  void svarint(std::int64_t value) {
    varint((static_cast<std::uint64_t>(value) << 1U) ^
           static_cast<std::uint64_t>(value >> 63));
  }

  /// IEEE-754 bit pattern of a double (exact round trip).
  void f64(double value) {
    std::uint64_t pattern = 0;
    std::memcpy(&pattern, &value, sizeof(pattern));
    u64(pattern);
  }

  void raw(std::span<const std::uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  /// Length-prefixed (varint) byte block.
  void block(std::span<const std::uint8_t> data) {
    varint(data.size());
    raw(data);
  }

  /// Length-prefixed (varint) UTF-8/ASCII string.
  void string(std::string_view text) {
    varint(text.size());
    bytes_.insert(bytes_.end(), text.begin(), text.end());
  }

private:
  void fixed(std::uint64_t value, std::size_t width) {
    for (std::size_t i = 0; i < width; ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(value >> (8U * i)));
    }
  }

  std::vector<std::uint8_t> bytes_;
};

// -- reader -----------------------------------------------------------------------

/// Bounds-checked little-endian decoder over a byte span.  Every overrun or
/// malformed encoding throws SnapshotError.
class ByteReader {
public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - offset_; }
  [[nodiscard]] bool atEnd() const noexcept { return offset_ == data_.size(); }

  [[nodiscard]] std::uint8_t u8() { return need(1)[0]; }
  [[nodiscard]] std::uint16_t u16() { return static_cast<std::uint16_t>(fixed(2)); }
  [[nodiscard]] std::uint32_t u32() { return static_cast<std::uint32_t>(fixed(4)); }
  [[nodiscard]] std::uint64_t u64() { return fixed(8); }

  [[nodiscard]] std::uint64_t varint() {
    std::uint64_t value = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      const std::uint8_t byte = u8();
      value |= static_cast<std::uint64_t>(byte & 0x7FU) << shift;
      if ((byte & 0x80U) == 0) {
        return value;
      }
    }
    throw SnapshotError("varint exceeds 64 bits");
  }

  [[nodiscard]] std::int64_t svarint() {
    const std::uint64_t zigzag = varint();
    return static_cast<std::int64_t>((zigzag >> 1U) ^ (~(zigzag & 1U) + 1U));
  }

  [[nodiscard]] double f64() {
    const std::uint64_t pattern = u64();
    double value = 0.0;
    std::memcpy(&value, &pattern, sizeof(value));
    return value;
  }

  [[nodiscard]] std::span<const std::uint8_t> raw(std::size_t count) { return need(count); }

  /// The unread remainder, for decoders that consume their own bytes
  /// (BigInt::fromBytes and friends); pair with skip() to advance.
  [[nodiscard]] std::span<const std::uint8_t> rest() const noexcept {
    return data_.subspan(offset_);
  }
  void skip(std::size_t count) { (void)need(count); }

  /// Length-prefixed (varint) byte block.
  [[nodiscard]] std::span<const std::uint8_t> block() {
    const std::uint64_t length = varint();
    if (length > remaining()) {
      throw SnapshotError("block length exceeds remaining payload");
    }
    return need(static_cast<std::size_t>(length));
  }

  [[nodiscard]] std::string string() {
    const auto bytes = block();
    return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
  }

private:
  [[nodiscard]] std::span<const std::uint8_t> need(std::size_t count) {
    if (count > remaining()) {
      throw SnapshotError("unexpected end of snapshot data");
    }
    const auto view = data_.subspan(offset_, count);
    offset_ += count;
    return view;
  }

  [[nodiscard]] std::uint64_t fixed(std::size_t width) {
    const auto bytes = need(width);
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < width; ++i) {
      value |= static_cast<std::uint64_t>(bytes[i]) << (8U * i);
    }
    return value;
  }

  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
};

} // namespace qadd::io
