/// \file shor_order_finding.cpp
/// Domain example: the quantum core of Shor's factoring algorithm — order
/// finding via phase estimation over the modular-multiplication unitary,
/// which this library realizes *exactly* as a reversible permutation circuit.
/// The ancilla histogram concentrates on multiples of 2^m / r; continued
/// fractions on a sampled peak recover the order r, and gcd(a^(r/2) +- 1, N)
/// yields the factors.
///
///   ./shor_order_finding [N] [a]     (default 15, 7)
#include "algorithms/shor.hpp"
#include "qc/measure.hpp"
#include "qc/simulator.hpp"

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <map>
#include <numeric>

int main(int argc, char** argv) {
  using namespace qadd;

  algos::OrderFindingOptions options;
  options.modulus = argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 15;
  options.base = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 7;
  options.precisionQubits = 5;

  const std::uint64_t r = algos::multiplicativeOrder(options.base, options.modulus);
  const qc::Circuit circuit = algos::orderFinding(options);
  std::cout << "Order finding: N = " << options.modulus << ", a = " << options.base
            << "  (true order r = " << r << ")\n";
  std::cout << "circuit: " << circuit.qubits() << " qubits, " << circuit.size() << " gates\n\n";

  qc::Simulator<dd::NumericSystem> simulator(
      circuit, {1e-12, dd::NumericSystem::Normalization::LeftmostNonzero});
  simulator.run();

  // Ancilla marginal distribution.
  const auto amplitudes = simulator.package().amplitudes(simulator.state());
  const unsigned m = options.precisionQubits;
  const unsigned w = algos::workRegisterWidth(options.modulus);
  std::map<std::size_t, double> marginal;
  for (std::size_t index = 0; index < amplitudes.size(); ++index) {
    marginal[index >> w] += std::norm(amplitudes[index]);
  }
  std::cout << "ancilla value  phase      P        (peaks at s/r)\n";
  for (const auto& [ancilla, probability] : marginal) {
    if (probability < 1e-6) {
      continue;
    }
    const double phase = static_cast<double>(ancilla) / std::ldexp(1.0, static_cast<int>(m));
    std::cout << std::setw(12) << ancilla << "  " << std::fixed << std::setprecision(5) << phase
              << "  " << std::setprecision(5) << probability << "\n";
  }

  // Sample outcomes and recover r classically (denominator of the phase).
  std::mt19937_64 rng(1234);
  std::cout << "\nsampled runs:\n";
  for (int run = 0; run < 5; ++run) {
    const std::uint64_t outcome = qc::sampleOutcome(simulator.package(), simulator.state(), rng);
    const std::uint64_t ancilla = outcome >> w;
    // For this demo r | 2^m, so the reduced fraction gives r directly.
    const std::uint64_t g = std::gcd(ancilla, std::uint64_t{1} << m);
    const std::uint64_t candidate = ancilla == 0 ? 0 : (std::uint64_t{1} << m) / g;
    std::cout << "  measured " << ancilla << "/" << (1ULL << m) << "  -> candidate order "
              << candidate << (candidate != 0 && r % candidate == 0 ? "  (divides r)" : "")
              << "\n";
  }
  const std::uint64_t half = [&] {
    std::uint64_t value = 1;
    for (std::uint64_t i = 0; i < r / 2; ++i) {
      value = value * options.base % options.modulus;
    }
    return value;
  }();
  if (r % 2 == 0 && half != options.modulus - 1) {
    std::cout << "\nfactors from gcd(a^(r/2) +- 1, N): "
              << std::gcd(half + 1, options.modulus) << " * "
              << std::gcd(half - 1, options.modulus) << " = " << options.modulus << "\n";
  }
  return 0;
}
