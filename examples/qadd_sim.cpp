/// \file qadd_sim.cpp
/// Command-line simulator: read a circuit (OpenQASM 2.0 or the native text
/// format), simulate it with the chosen backend, and print amplitudes,
/// measurement samples, per-qubit marginals or the diagram statistics.
///
///   ./qadd_sim <file> [--backend alg|num] [--eps E] [--samples N]
///              [--marginals] [--dot] [--amplitudes] [--stats]
///              [--trace-json <path>]
///
/// Files ending in .qasm are parsed as OpenQASM; anything else as the native
/// "qubits N" text format (see qc/circuit.hpp).  --stats prints the package
/// telemetry (cache hit rates, unique tables, GC) after the run; --trace-json
/// writes a Chrome-trace span timeline of the simulation.
#include "core/export.hpp"
#include "eval/report.hpp"
#include "obs/tracer.hpp"
#include "qc/measure.hpp"
#include "qc/qasm.hpp"
#include "qc/simulator.hpp"

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

namespace {

using namespace qadd;

struct CliOptions {
  std::string file;
  std::string backend = "alg";
  double epsilon = 1e-12;
  int samples = 0;
  bool marginals = false;
  bool dot = false;
  bool amplitudes = true;
  bool stats = false;
  std::string traceJsonPath;
};

[[noreturn]] void usage() {
  std::cerr << "usage: qadd_sim <file> [--backend alg|num] [--eps E] [--samples N]\n"
               "                [--marginals] [--dot] [--no-amplitudes] [--stats]\n"
               "                [--trace-json <path>]\n";
  std::exit(2);
}

CliOptions parseArgs(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--backend" && i + 1 < argc) {
      options.backend = argv[++i];
    } else if (arg == "--eps" && i + 1 < argc) {
      options.epsilon = std::stod(argv[++i]);
    } else if (arg == "--samples" && i + 1 < argc) {
      options.samples = std::atoi(argv[++i]);
    } else if (arg == "--marginals") {
      options.marginals = true;
    } else if (arg == "--dot") {
      options.dot = true;
    } else if (arg == "--no-amplitudes") {
      options.amplitudes = false;
    } else if (arg == "--stats") {
      options.stats = true;
    } else if (arg == "--trace-json" && i + 1 < argc) {
      options.traceJsonPath = argv[++i];
    } else if (!arg.starts_with("--") && options.file.empty()) {
      options.file = arg;
    } else {
      usage();
    }
  }
  if (options.file.empty()) {
    usage();
  }
  return options;
}

template <class System>
int runBackend(const qc::Circuit& circuit, const CliOptions& options,
               typename System::Config config) {
  qc::Simulator<System> simulator(circuit, config);
  simulator.run();
  auto& package = simulator.package();
  std::cout << "backend : " << package.system().describe() << "\n";
  std::cout << "qubits  : " << circuit.qubits() << ", gates: " << circuit.size() << "\n";
  std::cout << "dd nodes: " << simulator.stateNodes() << " (of up to "
            << ((1ULL << circuit.qubits()) - 1) << ")\n";

  if (options.amplitudes && circuit.qubits() <= 12) {
    const auto amplitudes = package.amplitudes(simulator.state());
    std::cout << "\namplitudes (nonzero):\n";
    for (std::size_t i = 0; i < amplitudes.size(); ++i) {
      if (std::abs(amplitudes[i]) < 1e-12) {
        continue;
      }
      std::cout << "  |";
      for (qc::Qubit q = 0; q < circuit.qubits(); ++q) {
        std::cout << ((i >> (circuit.qubits() - 1 - q)) & 1ULL);
      }
      std::cout << ">  " << amplitudes[i].real();
      if (std::abs(amplitudes[i].imag()) >= 1e-12) {
        std::cout << (amplitudes[i].imag() < 0 ? " - " : " + ")
                  << std::abs(amplitudes[i].imag()) << "i";
      }
      std::cout << "\n";
    }
  }
  if (options.marginals) {
    std::cout << "\nper-qubit P(1):\n";
    for (qc::Qubit q = 0; q < circuit.qubits(); ++q) {
      std::cout << "  q" << q << " : " << qc::probabilityOfOne(package, simulator.state(), q)
                << "\n";
    }
  }
  if (options.samples > 0) {
    std::mt19937_64 rng(std::random_device{}());
    std::map<std::uint64_t, int> histogram;
    for (int i = 0; i < options.samples; ++i) {
      ++histogram[qc::sampleOutcome(package, simulator.state(), rng)];
    }
    std::cout << "\nsamples (" << options.samples << "):\n";
    for (const auto& [outcome, count] : histogram) {
      std::cout << "  ";
      for (qc::Qubit q = 0; q < circuit.qubits(); ++q) {
        std::cout << ((outcome >> (circuit.qubits() - 1 - q)) & 1ULL);
      }
      std::cout << " : " << count << "\n";
    }
  }
  if (options.dot) {
    std::cout << "\n" << toDot(package, simulator.state());
  }
  if (options.stats) {
    std::cout << "\n";
    eval::printStatsTable(std::cout, package.stats());
  }
  if (!options.traceJsonPath.empty()) {
    if (obs::Tracer::global().writeJson(options.traceJsonPath)) {
      std::cout << "\nspan trace written to " << options.traceJsonPath << "\n";
    } else {
      std::cerr << "qadd_sim: could not write " << options.traceJsonPath << "\n";
      return 1;
    }
  }
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  const CliOptions options = parseArgs(argc, argv);
  if (!options.traceJsonPath.empty()) {
    obs::Tracer::global().setEnabled(true);
  }
  std::ifstream in(options.file);
  if (!in) {
    std::cerr << "qadd_sim: cannot open " << options.file << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  try {
    const qc::Circuit circuit = options.file.ends_with(".qasm")
                                    ? qc::fromQasm(buffer.str())
                                    : qc::Circuit::fromText(buffer.str());
    if (options.backend == "alg") {
      if (!circuit.isCliffordTOnly()) {
        std::cerr << "qadd_sim: circuit contains rotations; use --backend num or compile to "
                     "Clifford+T first\n";
        return 1;
      }
      return runBackend<dd::AlgebraicSystem>(circuit, options, {});
    }
    if (options.backend == "num") {
      return runBackend<dd::NumericSystem>(
          circuit, options,
          {options.epsilon, dd::NumericSystem::Normalization::LeftmostNonzero});
    }
    usage();
  } catch (const std::exception& error) {
    std::cerr << "qadd_sim: " << error.what() << "\n";
    return 1;
  }
}
