/// \file exact_expectation.cpp
/// Domain example: measuring a molecular-style Hamiltonian on exactly
/// prepared states.  The algebraic QMDD returns expectation values of Pauli
/// strings as exact algebraic numbers — the energy of an eigenstate is the
/// precise eigenvalue, with literally zero measurement-model error, which is
/// what makes the representation attractive for verification-grade
/// simulation (paper, Section V-B).
///
///   ./exact_expectation
#include "algorithms/gse.hpp"
#include "qc/observables.hpp"
#include "qc/simulator.hpp"

#include <iomanip>
#include <iostream>

int main() {
  using namespace qadd;

  constexpr unsigned kQubits = 3;
  const algos::IsingHamiltonian hamiltonian = algos::makeMolecularInstance(kQubits);

  // Assemble H = sum h_j Z_j + sum J_jk Z_j Z_k as a Pauli observable.
  qc::PauliObservable observable;
  for (unsigned j = 0; j < kQubits; ++j) {
    std::string text(kQubits, 'I');
    text[j] = 'Z';
    observable.terms.push_back({hamiltonian.fields[j], qc::PauliString::fromText(text)});
  }
  for (const auto& [j, k, strength] : hamiltonian.couplings) {
    std::string text(kQubits, 'I');
    text[static_cast<std::size_t>(j)] = 'Z';
    text[static_cast<std::size_t>(k)] = 'Z';
    observable.terms.push_back({strength, qc::PauliString::fromText(text)});
  }
  std::cout << "H =";
  for (const auto& [coefficient, pauli] : observable.terms) {
    std::cout << " + " << std::setprecision(4) << coefficient << "*" << pauli.toText();
  }
  std::cout << "\n\n";

  dd::Package<dd::AlgebraicSystem> package(kQubits);

  std::cout << "exact energies of the computational eigenstates:\n";
  std::cout << std::left << std::setw(10) << "state" << std::setw(18) << "<H> (measured)"
            << std::setw(18) << "eigenvalue" << "\n";
  for (std::uint64_t eigenstate = 0; eigenstate < (1ULL << kQubits); ++eigenstate) {
    qc::Circuit preparation(kQubits);
    for (qc::Qubit q = 0; q < kQubits; ++q) {
      if ((eigenstate >> q) & 1ULL) {
        preparation.x(q);
      }
    }
    const auto state =
        package.multiply(qc::buildUnitary(package, preparation), package.makeZeroState());
    const double measured = observable.expectation(package, state);
    std::cout << "  |";
    for (qc::Qubit q = 0; q < kQubits; ++q) {
      std::cout << ((eigenstate >> q) & 1ULL);
    }
    std::cout << ">   " << std::setw(16) << std::setprecision(12) << measured << "  "
              << std::setw(16) << hamiltonian.eigenvalue(eigenstate) << "\n";
  }

  // A superposition: the GHZ state averages the |000> and |111> energies.
  qc::Circuit ghz(kQubits);
  ghz.h(0).cx(0, 1).cx(1, 2);
  const auto state = package.multiply(qc::buildUnitary(package, ghz), package.makeZeroState());
  const double mixed = observable.expectation(package, state);
  const double expected =
      0.5 * (hamiltonian.eigenvalue(0) + hamiltonian.eigenvalue((1ULL << kQubits) - 1));
  std::cout << "\nGHZ state: <H> = " << mixed << "  (average of the two branches: " << expected
            << ")\n";
  std::cout << "\nEvery <Z-string> above was computed as an exact element of Q[w];\n"
               "only the final scaling by the real coefficients used doubles.\n";
  return 0;
}
