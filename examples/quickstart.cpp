/// \file quickstart.cpp
/// Entry-point example: build a Bell state with the exact algebraic QMDD,
/// inspect amplitudes, node counts and the DOT rendering, and contrast with
/// the numerical representation.
///
///   ./quickstart
#include "core/export.hpp"
#include "qc/simulator.hpp"

#include <iostream>

int main() {
  using namespace qadd;

  // A 2-qubit Bell circuit: H on the top qubit, then CNOT.
  qc::Circuit bell(2, "bell");
  bell.h(0).cx(0, 1);

  // --- exact algebraic simulation -------------------------------------------
  qc::Simulator<dd::AlgebraicSystem> simulator(bell);
  simulator.run();

  std::cout << "Bell state, algebraic QMDD\n";
  std::cout << "  nodes: " << simulator.stateNodes() << "\n";
  const auto amplitudes = simulator.package().amplitudes(simulator.state());
  const char* labels[] = {"|00>", "|01>", "|10>", "|11>"};
  for (std::size_t i = 0; i < amplitudes.size(); ++i) {
    std::cout << "  " << labels[i] << " : " << amplitudes[i].real();
    if (amplitudes[i].imag() != 0.0) {
      std::cout << " + " << amplitudes[i].imag() << "i";
    }
    std::cout << "\n";
  }

  // The root weight is the exact algebraic value 1/sqrt2 — no rounding.
  const auto& weight = simulator.package().system().value(simulator.state().w);
  std::cout << "  root weight (exact): " << weight << "\n";

  // Norm check is an exact identity: <psi|psi> == 1 as an algebraic value.
  const auto norm = simulator.package().innerProduct(simulator.state(), simulator.state());
  std::cout << "  <psi|psi> == 1 exactly: "
            << (simulator.package().system().isOne(norm) ? "yes" : "no") << "\n\n";

  // --- the same state as a DOT graph ----------------------------------------
  std::cout << "DOT rendering (pipe into `dot -Tpng`):\n"
            << toDot(simulator.package(), simulator.state()) << "\n";

  // --- numerical flavor for comparison ---------------------------------------
  qc::Simulator<dd::NumericSystem> numeric(bell, {1e-12});
  numeric.run();
  std::cout << "Numerical QMDD (eps = 1e-12): " << numeric.stateNodes()
            << " nodes, amplitude |00> = "
            << numeric.package().amplitudes(numeric.state())[0].real() << "\n";
  return 0;
}
