/// \file grover_search.cpp
/// Domain example: run Grover's database search (the paper's Section V
/// benchmark) with the exact algebraic QMDD and watch the amplitude of the
/// marked element get amplified — with perfect accuracy and a DD that stays
/// linear in the number of qubits.
///
///   ./grover_search [nqubits] [marked] [--stats] [--trace-json <path>]
///                   [--checkpoint-every K] [--checkpoint-prefix P]
///
/// With --checkpoint-every K the simulator writes a QCKP checkpoint every K
/// gates; a later run can resume from one exactly (qadd_snapshot can inspect
/// the embedded state).
#include "algorithms/grover.hpp"
#include "eval/report.hpp"
#include "obs/tracer.hpp"
#include "qc/simulator.hpp"

#include <array>
#include <cstdlib>
#include <iomanip>
#include <iostream>

int main(int argc, char** argv) {
  using namespace qadd;

  const eval::ObsCliOptions obsOptions = eval::parseObsCli(argc, argv);
  algos::GroverOptions options;
  options.nqubits = argc > 1 ? static_cast<qc::Qubit>(std::atoi(argv[1])) : 9;
  options.marked = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                            : (1ULL << (options.nqubits - 1)) - 3;

  const qc::Circuit circuit = algos::grover(options);
  const std::size_t iterations = algos::groverOptimalIterations(options.nqubits);
  std::cout << "Grover search: " << options.nqubits << " qubits, marked element "
            << options.marked << ", " << iterations << " iterations, " << circuit.size()
            << " gates\n\n";

  std::array<bool, 64> markedBits{};
  for (qc::Qubit q = 0; q < options.nqubits; ++q) {
    markedBits[q] = ((options.marked >> q) & 1ULL) != 0;
  }

  qc::Simulator<dd::AlgebraicSystem> simulator(circuit);
  const std::size_t gatesPerIteration = (circuit.size() - options.nqubits) / iterations;
  std::size_t nextReport = options.nqubits; // after the initial Hadamards
  std::cout << std::left << std::setw(12) << "iteration" << std::setw(16) << "P(marked)"
            << std::setw(10) << "nodes" << "\n";
  std::size_t iteration = 0;
  std::size_t checkpointsWritten = 0;
  while (simulator.step()) {
    if (obsOptions.checkpointEvery != 0 &&
        simulator.gateIndex() % obsOptions.checkpointEvery == 0) {
      simulator.saveCheckpointFile(obsOptions.checkpointPrefix +
                                   std::to_string(simulator.gateIndex()) + ".qckp");
      ++checkpointsWritten;
    }
    if (simulator.gateIndex() != nextReport) {
      continue;
    }
    const double probability =
        simulator.probability(std::span<const bool>(markedBits.data(), options.nqubits));
    std::cout << std::left << std::setw(12) << iteration << std::setw(16) << std::fixed
              << std::setprecision(8) << probability << std::setw(10) << simulator.stateNodes()
              << "\n";
    ++iteration;
    nextReport += gatesPerIteration * std::max<std::size_t>(1, iterations / 8);
  }
  const double final =
      simulator.probability(std::span<const bool>(markedBits.data(), options.nqubits));
  std::cout << "\nfinal P(marked) = " << std::setprecision(10) << final
            << "   (closed form: "
            << algos::groverSuccessProbability(options.nqubits, iterations) << ")\n";
  std::cout << "final DD size   = " << simulator.stateNodes() << " nodes for a state space of "
            << (1ULL << options.nqubits) << " amplitudes\n";
  if (checkpointsWritten != 0) {
    std::cout << checkpointsWritten << " checkpoints written to " << obsOptions.checkpointPrefix
              << "<gate>.qckp\n";
  }
  if (obsOptions.stats) {
    std::cout << "\n";
    eval::printStatsTable(std::cout, simulator.package().stats());
  }
  if (!obsOptions.traceJsonPath.empty()) {
    if (obs::Tracer::global().writeJson(obsOptions.traceJsonPath)) {
      std::cout << "\nspan trace written to " << obsOptions.traceJsonPath << "\n";
    } else {
      std::cerr << "grover_search: could not write " << obsOptions.traceJsonPath << "\n";
      return 1;
    }
  }
  return 0;
}
