/// \file epsilon_tradeoff.cpp
/// Interactive version of the paper's core experiment: sweep the tolerance
/// epsilon of the numerical QMDD over a Grover simulation and print, for each
/// value, the final diagram size and accuracy — side by side with the
/// algebraic representation, which needs no such knob.
///
///   ./epsilon_tradeoff [nqubits] [--jobs N] [--stats] [--trace-json <path>]
///                      [--help]
#include "algorithms/grover.hpp"
#include "eval/driver_cli.hpp"
#include "eval/report.hpp"
#include "eval/sweep.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace qadd;

  const eval::DriverSpec spec{
      "epsilon_tradeoff",
      "The paper's core trade-off: numeric ε sweep vs the knob-free algebraic QMDD.",
      {{"nqubits", 8, "circuit width"}},
      false};
  const eval::DriverCli cli = eval::parseDriverCli(argc, argv, spec);
  const auto nqubits = static_cast<qc::Qubit>(cli.positionals[0]);
  const qc::Circuit circuit = algos::grover({nqubits, (1ULL << nqubits) - 2, 0});
  std::cout << "Grover, " << nqubits << " qubits, " << circuit.size() << " gates\n";

  eval::SweepSpec sweep(circuit);
  sweep.options.sampleEvery = std::max<std::size_t>(1, circuit.size() / 40);
  cli.obs.applyTo(sweep.options);
  sweep.reference = eval::ReferencePolicy::Inline;
  sweep.addEpsilons({0.0, 1e-15, 1e-10, 1e-5, 1e-2});
  sweep.applyApprox(cli.approx);

  const auto pool = cli.makePool();
  const eval::SweepResult result = eval::runSweep(sweep, pool.get());

  eval::printSummaryTable(std::cout, result.traces);
  eval::printAsciiChart(std::cout, "state DD size over the simulation", result.traces,
                        eval::Series::Nodes, false);
  eval::printAsciiChart(std::cout, "accuracy error (numeric flavors)", result.traces,
                        eval::Series::Error, true);
  std::cout << "\nReading the table: eps = 0 is accurate but bloated; large eps is\n"
               "compact but wrong (down to a zero vector); the algebraic diagram is\n"
               "compact AND exact — the trade-off is gone (paper, Sections III & V).\n";
  eval::finishDriverCli(cli, std::cout, result);
  return 0;
}
