/// \file epsilon_tradeoff.cpp
/// Interactive version of the paper's core experiment: sweep the tolerance
/// epsilon of the numerical QMDD over a Grover simulation and print, for each
/// value, the final diagram size and accuracy — side by side with the
/// algebraic representation, which needs no such knob.
///
///   ./epsilon_tradeoff [nqubits]
#include "algorithms/grover.hpp"
#include "eval/report.hpp"
#include "eval/trace.hpp"

#include <cstdlib>
#include <iostream>

int main(int argc, char** argv) {
  using namespace qadd;

  const auto nqubits = static_cast<qc::Qubit>(argc > 1 ? std::atoi(argv[1]) : 8);
  const qc::Circuit circuit = algos::grover({nqubits, (1ULL << nqubits) - 2, 0});
  std::cout << "Grover, " << nqubits << " qubits, " << circuit.size() << " gates\n";

  eval::TraceOptions options;
  options.sampleEvery = std::max<std::size_t>(1, circuit.size() / 40);

  std::vector<eval::SimulationTrace> traces;
  eval::ReferenceTrajectory reference;
  traces.push_back(eval::traceAlgebraic(circuit, options, {}, &reference));
  for (const double epsilon : {0.0, 1e-15, 1e-10, 1e-5, 1e-2}) {
    traces.push_back(eval::traceNumeric(circuit, epsilon, &reference, options));
  }

  eval::printSummaryTable(std::cout, traces);
  eval::printAsciiChart(std::cout, "state DD size over the simulation", traces,
                        eval::Series::Nodes, false);
  eval::printAsciiChart(std::cout, "accuracy error (numeric flavors)", traces,
                        eval::Series::Error, true);
  std::cout << "\nReading the table: eps = 0 is accurate but bloated; large eps is\n"
               "compact but wrong (down to a zero vector); the algebraic diagram is\n"
               "compact AND exact — the trade-off is gone (paper, Sections III & V).\n";
  return 0;
}
