/// \file equivalence_checking.cpp
/// Domain example: circuit equivalence checking (a core design-automation
/// task, [20]-[23] in the paper).  With the exact algebraic QMDD, checking
/// whether two circuits implement the same unitary reduces to comparing two
/// canonical root edges — an O(1) operation after diagram construction — and
/// the verdict is mathematically certain.  A numerical package must instead
/// decide how large a deviation still counts as "equal".
///
///   ./equivalence_checking
#include "qc/simulator.hpp"

#include <iostream>

namespace {

using namespace qadd;

template <class System>
bool equivalent(const qc::Circuit& a, const qc::Circuit& b,
                typename System::Config config = {}) {
  dd::Package<System> package(a.qubits(), config);
  return qc::buildUnitary(package, a) == qc::buildUnitary(package, b);
}

} // namespace

int main() {
  // Two realizations of the same operation: a SWAP as three CNOTs versus a
  // relabeling-free "textbook" construction via H/CZ — plus a T-gate pair
  // that cancels.
  qc::Circuit direct(2, "swap_direct");
  direct.cx(0, 1).cx(1, 0).cx(0, 1);

  qc::Circuit viaCz(2, "swap_via_cz");
  // CNOT(1,0) = H(0) CZ(0,1) H(0): rebuild the middle CNOT that way and
  // slip in T * Tdg, which must cancel exactly.
  viaCz.cx(0, 1);
  viaCz.h(0).t(0).tdg(0).cz(1, 0).h(0);
  viaCz.cx(0, 1);

  qc::Circuit wrong(2, "swap_wrong");
  wrong.cx(0, 1).cx(1, 0); // forgot the last CNOT

  std::cout << "algebraic QMDD equivalence (exact, O(1) root comparison):\n";
  std::cout << "  swap_direct == swap_via_cz : "
            << (equivalent<dd::AlgebraicSystem>(direct, viaCz) ? "EQUIVALENT" : "DIFFERENT")
            << "\n";
  std::cout << "  swap_direct == swap_wrong  : "
            << (equivalent<dd::AlgebraicSystem>(direct, wrong) ? "EQUIVALENT" : "DIFFERENT")
            << "\n\n";

  // The numerical package answers the same question only relative to a
  // tolerance: with eps = 0 even true equivalences can be missed once
  // rounding enters (here H introduces 1/sqrt2).
  std::cout << "numerical QMDD (canonical form depends on eps):\n";
  for (const double epsilon : {0.0, 1e-10}) {
    const bool same = equivalent<dd::NumericSystem>(
        direct, viaCz, {epsilon, dd::NumericSystem::Normalization::LeftmostNonzero});
    std::cout << "  eps = " << epsilon << " : swap_direct == swap_via_cz : "
              << (same ? "EQUIVALENT" : "DIFFERENT (missed due to rounding)") << "\n";
  }
  std::cout << "\nThe algebraic representation needs no tolerance: equal unitaries\n"
               "always produce identical canonical diagrams (Section V-B of the paper).\n";
  return 0;
}
